"""The resilient serving layer: retries, breaker, and degraded mode.

:class:`ResilientCollection` wraps a
:class:`~repro.durable.collection.DurableCollection` and turns storage
faults from tracebacks into policy:

* every durable mutation runs under a retry loop — TRANSIENT faults (see
  :func:`repro.resilient.policy.classify_fault`) are retried with capped
  exponential backoff and seeded jitter, after repairing the WAL
  (:meth:`~repro.durable.collection.DurableCollection.reopen_wal`) so a
  retry appends to a trustworthy log, never after damage;
* a :class:`~repro.resilient.breaker.CircuitBreaker` counts transient
  failures per *attempt*; when it trips, the collection enters **degraded
  mode**: queries keep answering from the in-memory collection, while
  mutations either apply in-memory-only (``degraded_mode="buffer"``) or
  fail fast with :class:`repro.errors.DegradedModeError`
  (``degraded_mode="fail_fast"``);
* after the breaker's cooldown, the next mutation admits one half-open
  **probe** (:meth:`probe`): repair the WAL, force an fsync through, and
  re-checkpoint twice so *both* retained snapshot generations cover the
  state served while degraded — then the log restarts empty and normal
  logged operation resumes;
* an optional per-operation deadline converts a stalling-but-answering
  disk into a typed :class:`repro.errors.DeadlineExceededError`.

Acknowledgement contract, explicitly: an acknowledgement from the normal
path means the mutation is in the WAL (durable per the fsync policy).  An
acknowledgement while **degraded-buffering** is weaker — the mutation is
served and will be persisted by the recovery checkpoint, but dies with
the process if it crashes before storage heals.  That trade (keep
serving vs. strict durability) is exactly the ``degraded_mode`` knob;
``fail_fast`` refuses the weaker acknowledgement outright.

Deadlines are enforced *between* attempts: a single blocked syscall
cannot be interrupted in-process, so the deadline bounds how long the
retry loop keeps trying, not the worst-case latency of one attempt.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.durable.collection import DurableCollection
from repro.durable.faults import FaultInjector, InjectedCrash
from repro.durable.wal import FsyncPolicy
from repro.errors import (
    DeadlineExceededError,
    DegradedModeError,
    DurabilityError,
    RetryExhaustedError,
)
from repro.obs import metrics
from repro.order.document import OrderedUpdateReport
from repro.query.live import BatchOp, BatchReport
from repro.query.store import ElementRow
from repro.resilient.breaker import CLOSED, CircuitBreaker
from repro.resilient.policy import (
    BreakerPolicy,
    FaultDomain,
    RetryPolicy,
    classify_fault,
)
from repro.xmlkit.tree import XmlElement

__all__ = ["ResilientCollection", "DEGRADED_MODES"]

#: Legal values for the ``degraded_mode`` knob.
DEGRADED_MODES = ("buffer", "fail_fast")

T = TypeVar("T")


class ResilientCollection:
    """A durable collection that survives a misbehaving disk.

    Parameters
    ----------
    durable:
        The wrapped durable collection (use :meth:`create` / :meth:`open`
        unless composing by hand).
    retry / breaker:
        Policies; defaults are :class:`RetryPolicy()` and
        :class:`BreakerPolicy()`.
    degraded_mode:
        ``"buffer"`` — while the breaker is open, mutations apply to the
        in-memory collection only (weaker acknowledgement, see the module
        docstring); ``"fail_fast"`` — mutations raise
        :class:`repro.errors.DegradedModeError` immediately.
    clock / sleep:
        Injectable time sources so tests drive cooldowns, deadlines, and
        backoff without wall-clock waits.
    """

    def __init__(
        self,
        durable: DurableCollection,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        degraded_mode: str = "buffer",
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if degraded_mode not in DEGRADED_MODES:
            raise ValueError(
                f"degraded_mode must be one of {DEGRADED_MODES}, "
                f"got {degraded_mode!r}"
            )
        self.durable = durable
        self.retry = retry or RetryPolicy()
        self.breaker = CircuitBreaker(breaker, clock=clock)
        self.degraded_mode = degraded_mode
        self._clock = clock
        self._sleep = sleep
        self._jitter_rng = self.retry.rng()
        self._degraded = False
        self._closed = False
        #: Names of operations acknowledged while degraded-buffering,
        #: oldest first — the in-memory "queue" the recovery checkpoint
        #: persists wholesale (state is snapshotted, not replayed).
        self._buffer: List[str] = []
        #: Lifetime stats, mirrored into :mod:`repro.obs` metrics and the
        #: :meth:`health` report.
        self.retries = 0
        self.deadline_exceeded = 0
        self.probe_failures = 0
        self.degraded_entered = 0
        self.degraded_queries = 0
        self.buffered_total = 0
        self.rejected_total = 0
        self.fault_counts: Dict[str, int] = {
            str(domain): 0 for domain in FaultDomain
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: "str | Path",
        documents: Sequence[XmlElement],
        group_size: int | None = 5,
        strategy: str = "scan",
        fsync: "str | FsyncPolicy" = "always",
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        degraded_mode: str = "buffer",
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "ResilientCollection":
        """Create a fresh durable collection and wrap it.

        The fault injector is armed *after* the bootstrap snapshot and
        log exist: a half-created directory is a deployment error, not a
        serving-path fault, and retrying it would fight
        :meth:`DurableCollection.create`'s already-exists guard.
        """
        durable = DurableCollection.create(
            directory,
            documents,
            group_size=group_size,
            strategy=strategy,
            fsync=fsync,
        )
        _arm(durable, faults)
        return cls(
            durable,
            retry=retry,
            breaker=breaker,
            degraded_mode=degraded_mode,
            clock=clock,
            sleep=sleep,
        )

    @classmethod
    def open(
        cls,
        directory: "str | Path",
        fsync: "str | FsyncPolicy" = "always",
        faults: Optional[FaultInjector] = None,
        verify: bool = True,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        degraded_mode: str = "buffer",
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "ResilientCollection":
        """Recover the collection in ``directory`` and wrap it.

        Like :meth:`create`, the injector is armed only once recovery has
        produced a healthy collection — recovery reads state, and the
        chaos harness's write-path hooks have nothing legitimate to
        injure there.
        """
        durable = DurableCollection.open(directory, fsync=fsync, verify=verify)
        _arm(durable, faults)
        return cls(
            durable,
            retry=retry,
            breaker=breaker,
            degraded_mode=degraded_mode,
            clock=clock,
            sleep=sleep,
        )

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether the collection is currently serving in degraded mode."""
        return self._degraded

    @property
    def buffered(self) -> int:
        """Mutations acknowledged in-memory-only since entering degraded."""
        return len(self._buffer)

    @property
    def live(self):
        """The in-memory :class:`~repro.query.live.LiveCollection`."""
        return self.durable.live

    @property
    def documents(self) -> List[XmlElement]:
        """The document roots, in collection order."""
        return self.durable.documents

    # ------------------------------------------------------------------
    # The guard
    # ------------------------------------------------------------------

    def _mutate(
        self,
        op_name: str,
        durable_op: Callable[[], T],
        live_op: Optional[Callable[[], T]],
    ) -> T:
        """Route one mutation through breaker, retries, and degraded mode."""
        if self._closed:
            raise DurabilityError("resilient collection is closed")
        if self._degraded or self.breaker.state != CLOSED:
            if self.breaker.allow():
                # The half-open probe: one shot at proving storage healed.
                if not self.probe():
                    return self._degraded_apply(op_name, live_op)
                # Healed and resynced — fall through to the normal path.
            else:
                if not self._degraded:
                    # force_open() without a preceding fault lands here.
                    self._enter_degraded()
                return self._degraded_apply(op_name, live_op)
        return self._with_retries(op_name, durable_op, live_op)

    def _with_retries(
        self,
        op_name: str,
        durable_op: Callable[[], T],
        live_op: Optional[Callable[[], T]],
    ) -> T:
        start = self._clock()
        attempt = 0
        while True:
            attempt += 1
            try:
                result = durable_op()
            except InjectedCrash:
                raise  # simulated process death: no retry can un-crash it
            except BaseException as error:
                domain = classify_fault(error)
                self.fault_counts[str(domain)] += 1
                metrics.incr(f"resilient.faults.{domain}")
                if domain is not FaultDomain.TRANSIENT:
                    raise
                self.breaker.record_failure()
                self._repair()
                if self.breaker.state != CLOSED:
                    self._enter_degraded()
                    return self._degraded_apply(op_name, live_op)
                if attempt >= self.retry.max_attempts:
                    metrics.incr("resilient.retry_exhausted")
                    raise RetryExhaustedError(
                        f"{op_name} still failing after {attempt} attempts"
                    ) from error
                delay = self.retry.delay(attempt, self._jitter_rng)
                self._check_deadline(op_name, start, delay, error)
                self.retries += 1
                metrics.incr("resilient.retries")
                self._sleep(delay)
            else:
                self.breaker.record_success()
                return result

    def _repair(self) -> None:
        """Best-effort WAL repair between attempts.

        A failure here is swallowed: if the disk is still refusing I/O
        the next attempt (or the breaker) will say so with better
        context than a repair traceback would.
        """
        try:
            self.durable.reopen_wal()
        except (OSError, DurabilityError):
            metrics.incr("resilient.repair_failures")

    def _check_deadline(
        self, op_name: str, start: float, next_delay: float, cause: BaseException
    ) -> None:
        deadline = self.retry.deadline_seconds
        if deadline is None:
            return
        if self._clock() - start + next_delay > deadline:
            self.deadline_exceeded += 1
            metrics.incr("resilient.deadline_exceeded")
            raise DeadlineExceededError(
                f"{op_name} exceeded its {deadline}s deadline while retrying"
            ) from cause

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------

    def _enter_degraded(self) -> None:
        if self._degraded:
            return
        self._degraded = True
        self.degraded_entered += 1
        metrics.incr("resilient.degraded.entered")
        metrics.gauge("resilient.degraded", 1)

    def _degraded_apply(
        self, op_name: str, live_op: Optional[Callable[[], T]]
    ) -> T:
        if live_op is None or self.degraded_mode == "fail_fast":
            self.rejected_total += 1
            metrics.incr("resilient.degraded.rejected")
            raise DegradedModeError(
                f"storage is degraded (circuit open); {op_name} rejected"
                + ("" if live_op is None else " (fail_fast mode)")
            )
        result = live_op()
        self._buffer.append(op_name)
        self.buffered_total += 1
        metrics.incr("resilient.degraded.buffered")
        return result

    def probe(self) -> bool:
        """One half-open probe of the storage path; ``True`` on recovery.

        A successful probe must leave storage *caught up*, not just
        reachable: the WAL is repaired, an fsync is forced through, and
        the collection is checkpointed twice so both retained snapshot
        generations cover everything served while degraded (a fallback
        to the older generation must never resurrect pre-degraded
        state).  The checkpoints prune the log, so logged operation
        resumes on an empty, freshly-chained WAL.  Any transient fault
        along the way re-opens the breaker and the cooldown restarts.
        """
        try:
            self.durable.reopen_wal()
            self.durable.wal.sync()
            self.durable.checkpoint()
            self.durable.checkpoint()
        except InjectedCrash:
            raise
        except BaseException as error:
            domain = classify_fault(error)
            self.fault_counts[str(domain)] += 1
            metrics.incr(f"resilient.faults.{domain}")
            if domain is not FaultDomain.TRANSIENT:
                raise
            self.probe_failures += 1
            metrics.incr("resilient.probe_failures")
            self.breaker.record_failure()  # half-open -> straight back open
            return False
        self.breaker.record_success()
        self._buffer.clear()
        if self._degraded:
            self._degraded = False
            metrics.incr("resilient.degraded.exited")
            metrics.gauge("resilient.degraded", 0)
        return True

    # ------------------------------------------------------------------
    # Mutations (each: durable path + in-memory degraded fallback)
    # ------------------------------------------------------------------

    def insert_child(
        self, parent: XmlElement, index: int, tag: str = "new"
    ) -> OrderedUpdateReport:
        """Guarded order-sensitive insertion under ``parent`` at ``index``."""
        return self._mutate(
            "insert_child",
            lambda: self.durable.insert_child(parent, index, tag=tag),
            lambda: self.durable.live.insert_child(parent, index, tag=tag),
        )

    def insert_before(
        self, reference: XmlElement, tag: str = "new"
    ) -> OrderedUpdateReport:
        """Guarded insertion of a sibling immediately before ``reference``."""
        return self._mutate(
            "insert_before",
            lambda: self.durable.insert_before(reference, tag=tag),
            lambda: self.durable.live.insert_before(reference, tag=tag),
        )

    def insert_after(
        self, reference: XmlElement, tag: str = "new"
    ) -> OrderedUpdateReport:
        """Guarded insertion of a sibling immediately after ``reference``."""
        return self._mutate(
            "insert_after",
            lambda: self.durable.insert_after(reference, tag=tag),
            lambda: self.durable.live.insert_after(reference, tag=tag),
        )

    def delete(self, node: XmlElement) -> OrderedUpdateReport:
        """Guarded deletion of ``node`` and its subtree."""
        return self._mutate(
            "delete",
            lambda: self.durable.delete(node),
            lambda: self.durable.live.delete(node),
        )

    def add_document(self, root: XmlElement) -> int:
        """Guarded addition of a whole document; returns its index."""
        return self._mutate(
            "add_document",
            lambda: self.durable.add_document(root),
            lambda: self.durable.live.add_document(root),
        )

    def compact(self) -> List[int]:
        """Guarded SC-table compaction; returns per-document record counts."""
        return self._mutate(
            "compact",
            lambda: self.durable.compact(),
            lambda: self.durable.live.compact(),
        )

    def apply_batch(self, ops: Sequence[BatchOp]) -> BatchReport:
        """Guarded atomic batch: retried, buffered, or rejected as one unit.

        The batch is encoded to ``(document, preorder position)`` addresses
        once, up front — a failed attempt rolls the durable collection's
        in-memory state back to the last durable state (making the retry
        apply exactly once), which invalidates node references but not
        addresses.  Every retry, and the degraded fallback, re-resolves the
        same addressed batch against the state it is about to mutate.

        Degraded semantics match single ops, per whole batch: ``buffer``
        applies the batch in memory only (one buffer entry; note a buffered
        batch that fails mid-way has no durable state to roll back to, so
        only the normal path is all-or-nothing), ``fail_fast`` rejects it
        outright.
        """
        encoded = self.durable.encode_batch(list(ops))
        if not encoded:
            return BatchReport()
        return self._mutate(
            f"batch[{len(encoded)}]",
            lambda: self.durable.apply_batch_addressed(encoded),
            lambda: self.durable.live.apply_batch(
                self.durable.resolve_batch(encoded)
            ),
        )

    def bulk_insert(
        self, inserts: Sequence[Tuple[XmlElement, int, str]]
    ) -> BatchReport:
        """Guarded batched insertions from (parent, index, tag) triples."""
        return self.apply_batch(
            [BatchOp.insert_child(parent, index, tag) for parent, index, tag in inserts]
        )

    def bulk_delete(self, nodes: Sequence[XmlElement]) -> BatchReport:
        """Guarded batched deletion of ``nodes`` (each with its subtree)."""
        return self.apply_batch([BatchOp.delete(node) for node in nodes])

    def checkpoint(self) -> int:
        """Guarded snapshot checkpoint; no degraded fallback exists.

        A checkpoint *is* storage work — while degraded it raises
        :class:`repro.errors.DegradedModeError` regardless of
        ``degraded_mode`` (the recovery probe performs the checkpoints
        that matter).
        """
        return self._mutate("checkpoint", self.durable.checkpoint, None)

    # ------------------------------------------------------------------
    # Queries — always served, degraded or not
    # ------------------------------------------------------------------

    def query(self, text: str) -> List[ElementRow]:
        """Evaluate a query; answers from memory even while degraded."""
        if self._degraded:
            self.degraded_queries += 1
            metrics.incr("resilient.degraded.queries")
        return self.durable.query(text)

    def count(self, text: str) -> int:
        """Number of nodes the query retrieves."""
        return len(self.query(text))

    def check(self) -> bool:
        """Verify every document's SC-derived order."""
        return self.durable.check()

    # ------------------------------------------------------------------
    # Health and lifecycle
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """A JSON-ready health report (the CLI ``health`` verb's payload)."""
        report: Dict[str, Any] = {
            "state": (
                "closed"
                if self._closed
                else "degraded" if self._degraded else "ok"
            ),
            "degraded_mode": self.degraded_mode,
            "breaker": {
                "state": self.breaker.state,
                "consecutive_failures": self.breaker.consecutive_failures,
                "times_opened": self.breaker.times_opened,
                "times_closed": self.breaker.times_closed,
                "probes": self.breaker.probes,
            },
            "retries": self.retries,
            "retry_policy": {
                "max_attempts": self.retry.max_attempts,
                "base_delay": self.retry.base_delay,
                "max_delay": self.retry.max_delay,
                "deadline_seconds": self.retry.deadline_seconds,
            },
            "faults": dict(self.fault_counts),
            "degraded": {
                "entered": self.degraded_entered,
                "buffered": len(self._buffer),
                "buffered_total": self.buffered_total,
                "rejected": self.rejected_total,
                "queries": self.degraded_queries,
            },
            "deadline_exceeded": self.deadline_exceeded,
            "probe_failures": self.probe_failures,
            "last_seq": self.durable.last_seq,
            "wal_next_seq": self.durable.wal.next_seq,
        }
        injected = getattr(self.durable.faults, "injected", None)
        if isinstance(injected, dict):
            report["chaos"] = {
                "injected": dict(injected),
                "total": sum(injected.values()),
                "stalls": getattr(self.durable.faults, "stalls", 0),
            }
        return report

    def close(self) -> None:
        """Drain the WAL (with retries) and close the durable collection.

        The final fsync is storage work like any other, so it gets the
        same retry treatment; exhausted retries raise (the caller must
        know the tail may be unsynced) but the collection is marked
        closed regardless.  While degraded the drain is skipped —
        storage is already condemned and the probe/recovery path owns
        re-syncing.  Once the drain has succeeded every acknowledged
        record is durable, so a fault in the courtesy sync inside
        :meth:`DurableCollection.close` itself risks no data and is
        swallowed.
        """
        if self._closed:
            return
        try:
            if not self._degraded:
                self._with_retries("close", self.durable.wal.sync, None)
        finally:
            self._closed = True
            try:
                self.durable.close()
            except (OSError, DurabilityError):
                metrics.incr("resilient.close_failures")

    def __enter__(self) -> "ResilientCollection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _arm(durable: DurableCollection, faults: Optional[FaultInjector]) -> None:
    """Attach a fault injector to an already-bootstrapped collection."""
    if faults is None:
        return
    durable.faults = faults
    durable.wal.faults = faults
