"""Probabilistic transient-fault injection at every durable boundary.

:mod:`repro.durable.faults` injects *scripted* failures — crash exactly
here, tear exactly that record — which is right for the crash matrix but
cannot answer the serving-layer question: does the system survive storage
that fails *sometimes*, at *any* boundary, for a while?
:class:`ChaosInjector` generalizes the injector into a chaos harness: a
seeded RNG decides, independently at each hazardous point, whether to
raise a :class:`TransientIOError` or stall the write (deadline pressure).

Injection sites (the ``sites`` knob selects a subset):

=============  ========================================================
``append``     before a WAL record's bytes are written — clean failure,
               nothing lands
``after``      after the bytes landed, before any fsync — the ambiguous
               write the WAL must roll back for retries to be safe
``sync``       the ``fsync`` itself fails or stalls
``snapshot``   before a snapshot's temp file is opened — retry-safe by
               the atomic-rename protocol
=============  ========================================================

Determinism: decisions depend only on the seed and the *sequence* of
hook calls, so a workload that drives the collection deterministically
sees the same faults on every run — chaos tests are reproducible, not
flaky.  The CLI builds one from the ``REPRO_CHAOS`` environment variable
(see :meth:`ChaosInjector.from_spec`), which is how CI runs the durable
round trip under fault pressure.
"""

from __future__ import annotations

import os
import time
from random import Random
from typing import Callable, Dict, FrozenSet, Optional

from repro.durable.faults import FaultInjector
from repro.obs import metrics

__all__ = ["TransientIOError", "ChaosInjector", "ALL_SITES"]

#: Every injection site the chaos harness knows.
ALL_SITES = frozenset({"append", "after", "sync", "snapshot"})

#: Environment variable the CLI reads chaos specs from.
CHAOS_ENV = "REPRO_CHAOS"


class TransientIOError(OSError):
    """The injected transient storage fault.

    An ``OSError`` subclass so classification lands it in the TRANSIENT
    fault domain exactly like a real storage hiccup would — resilience
    code must not be able to tell chaos from the real thing.
    """


class ChaosInjector(FaultInjector):
    """Seeded probabilistic fault injector for WAL and snapshot I/O.

    Parameters
    ----------
    rate:
        Per-site probability in ``[0, 1]`` of raising a
        :class:`TransientIOError` at each hook call.
    slow_rate / slow_seconds:
        Probability and duration of an injected stall (calls ``sleep``,
        injectable for tests), modeling a disk that answers but slowly —
        the case per-operation deadlines exist for.
    sites:
        Which boundaries to inject at; defaults to all of them.
    seed:
        RNG seed; identical seeds over identical call sequences inject
        identical faults.
    """

    def __init__(
        self,
        rate: float = 0.05,
        slow_rate: float = 0.0,
        slow_seconds: float = 0.0,
        sites: Optional[FrozenSet[str] | set] = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if not 0 <= rate <= 1:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if not 0 <= slow_rate <= 1:
            raise ValueError(f"slow_rate must be in [0, 1], got {slow_rate}")
        chosen = ALL_SITES if sites is None else frozenset(sites)
        unknown = chosen - ALL_SITES
        if unknown:
            raise ValueError(
                f"unknown chaos site(s) {sorted(unknown)}; "
                f"choose from {sorted(ALL_SITES)}"
            )
        self.rate = rate
        self.slow_rate = slow_rate
        self.slow_seconds = slow_seconds
        self.sites = chosen
        self.seed = seed
        self._rng = Random(seed)
        self._sleep = sleep
        #: Faults actually injected, by site — the chaos soak's oracle
        #: that pressure really was applied.
        self.injected: Dict[str, int] = {site: 0 for site in sorted(ALL_SITES)}
        self.stalls = 0

    # ------------------------------------------------------------------
    # Spec parsing (CLI / CI entry point)
    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "Optional[ChaosInjector]":
        """Build an injector from a ``key=value`` spec string.

        ``"rate=0.05,seed=7,slow=0.01,delay=0.002,sites=append+sync"`` —
        every key optional; an empty/blank spec returns ``None`` (chaos
        disabled).  Unknown keys are rejected loudly: a typo in a chaos
        spec silently disabling injection would be chaos theater.
        """
        spec = (spec or "").strip()
        if not spec:
            return None
        kwargs: Dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "rate":
                    kwargs["rate"] = float(value)
                elif key == "slow":
                    kwargs["slow_rate"] = float(value)
                elif key == "delay":
                    kwargs["slow_seconds"] = float(value)
                elif key == "seed":
                    kwargs["seed"] = int(value)
                elif key == "sites":
                    kwargs["sites"] = frozenset(value.split("+"))
                else:
                    raise ValueError(f"unknown chaos spec key {key!r}")
            except ValueError as error:
                raise ValueError(f"bad chaos spec {spec!r}: {error}") from None
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_env(cls) -> "Optional[ChaosInjector]":
        """Build an injector from ``$REPRO_CHAOS`` (``None`` when unset)."""
        return cls.from_spec(os.environ.get(CHAOS_ENV, ""))

    # ------------------------------------------------------------------
    # The dice
    # ------------------------------------------------------------------

    def _maybe_stall(self, site: str) -> None:
        if self.slow_rate and self._rng.random() < self.slow_rate:
            self.stalls += 1
            metrics.incr("chaos.stalls")
            self._sleep(self.slow_seconds)

    def _maybe_fail(self, site: str, detail: str) -> None:
        if site not in self.sites:
            return
        self._maybe_stall(site)
        if self.rate and self._rng.random() < self.rate:
            self.injected[site] += 1
            metrics.incr(f"chaos.injected.{site}")
            raise TransientIOError(f"injected transient fault: {detail}")

    @property
    def total_injected(self) -> int:
        """Total faults injected across every site."""
        return sum(self.injected.values())

    # ------------------------------------------------------------------
    # FaultInjector hooks
    # ------------------------------------------------------------------

    def on_append(self, seq: int, blob: bytes) -> bytes:
        """Maybe fail (or stall) before record ``seq``'s bytes land."""
        self._maybe_fail("append", f"append of WAL record {seq}")
        return blob

    def after_write(self, seq: int) -> None:
        """Maybe fail after record ``seq`` landed — the ambiguous write."""
        self._maybe_fail("after", f"post-write of WAL record {seq}")

    def on_sync(self, pending: int) -> None:
        """Maybe fail (or stall) the fsync of ``pending`` records."""
        self._maybe_fail("sync", f"fsync of {pending} pending record(s)")

    def on_snapshot_io(self, path: str) -> None:
        """Maybe fail (or stall) before the snapshot temp file opens."""
        self._maybe_fail("snapshot", f"snapshot write to {path}")
