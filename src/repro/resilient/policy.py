"""Fault domains, classification, and retry/deadline policy knobs.

The resilient serving layer never handles a bare exception: every failure
is first classified into one of four :class:`FaultDomain`\\ s, and the
domain — not the exception type at the raise site — decides the response:

===========  ====================================================  ==========
domain       typical causes                                        response
===========  ====================================================  ==========
TRANSIENT    ``OSError``/``TimeoutError`` from the storage layer   retry with
             (full disk blip, NFS hiccup, injected chaos)          backoff
CORRUPTION   CRC/structure damage found while *using* durable      surface;
             state (``WalCorruptError``, ``SnapshotCorruptError``) never retry
CAPACITY     the scheme's own exhaustion modes                     surface with
             (:class:`repro.errors.CapacityError`)                 the hint
INVARIANT    audit violations and API misuse (``AuditError``,      surface;
             ``OrderingError``, ...)                               never retry
===========  ====================================================  ==========

Only TRANSIENT faults are retried: retrying corruption re-reads the same
bad bytes, retrying capacity re-runs the same full table, and retrying an
invariant violation re-applies the same broken operation.  The breaker
(:mod:`repro.resilient.breaker`) counts TRANSIENT failures per *attempt*,
so a persistently failing disk trips it even when each logical operation
gives up after a handful of retries.

:class:`RetryPolicy` is deliberately boring: capped exponential backoff
with deterministic, seedable jitter (a fleet of processes restarting in
lockstep must not fsync in lockstep too) and an optional per-operation
deadline that converts a stalling disk into a typed
:class:`repro.errors.DeadlineExceededError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from random import Random
from typing import Optional

from repro.errors import (
    CapacityError,
    DurabilityError,
    ReplicationError,
    ReproError,
    SnapshotCorruptError,
    WalCorruptError,
)

__all__ = ["FaultDomain", "classify_fault", "RetryPolicy", "BreakerPolicy"]


class FaultDomain(enum.Enum):
    """The four failure classes the serving layer distinguishes."""

    TRANSIENT = "transient"
    CORRUPTION = "corruption"
    CAPACITY = "capacity"
    INVARIANT = "invariant"

    def __str__(self) -> str:
        return self.value


def classify_fault(error: BaseException) -> FaultDomain:
    """Map an exception to its fault domain.

    Order matters: :class:`repro.errors.CapacityError` subclasses both
    ordering and labeling errors, so capacity is checked before the
    invariant bucket; corruption errors subclass ``DurabilityError`` and
    are checked before the generic durability case.  Anything that is
    neither an OS-level error nor a known ``ReproError`` falls into the
    INVARIANT domain — unknown failures must never be silently retried.
    """
    if isinstance(error, CapacityError):
        return FaultDomain.CAPACITY
    if isinstance(error, (WalCorruptError, SnapshotCorruptError, ReplicationError)):
        # A broken replication stream (sequence gap, mid-stream damage) is
        # corruption of the shipped history: retrying the same bytes cannot
        # help, but re-bootstrapping from a snapshot can.
        return FaultDomain.CORRUPTION
    if isinstance(error, (OSError, TimeoutError)):
        return FaultDomain.TRANSIENT
    if isinstance(error, DurabilityError):
        # Generic durability misuse (closed log, bad policy string, ...)
        # is deterministic: retrying cannot help.
        return FaultDomain.INVARIANT
    if isinstance(error, ReproError):
        return FaultDomain.INVARIANT
    return FaultDomain.INVARIANT


@dataclass(frozen=True)
class RetryPolicy:
    """How transient faults are retried.

    ``max_attempts`` counts the first try: ``max_attempts=4`` means one
    attempt plus up to three retries.  The delay before retry *n* (1-based)
    is ``min(max_delay, base_delay * multiplier**(n-1))``, then shrunk by
    up to ``jitter`` (a fraction in ``[0, 1]``) using the policy's seeded
    RNG — deterministic for tests, decorrelated across seeds for fleets.
    ``deadline_seconds`` bounds the whole operation (attempts + backoff);
    ``None`` disables the deadline.
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    max_delay: float = 0.5
    multiplier: float = 2.0
    jitter: float = 0.5
    deadline_seconds: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def rng(self) -> Random:
        """A fresh jitter RNG seeded with this policy's seed."""
        return Random(self.seed)

    def delay(self, attempt: int, rng: Random) -> float:
        """Backoff before retry ``attempt`` (1-based), jitter applied."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            raw *= 1.0 - self.jitter * rng.random()
        return raw


@dataclass(frozen=True)
class BreakerPolicy:
    """When the circuit breaker trips, and how it probes its way back.

    ``failure_threshold`` consecutive transient failures (counted per
    attempt, across operations) open the circuit; after
    ``cooldown_seconds`` of monotonic time the breaker lets exactly one
    probe through (half-open).  A successful probe closes the circuit; a
    failed one re-opens it and restarts the cooldown.
    """

    failure_threshold: int = 5
    cooldown_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {self.cooldown_seconds}"
            )
