"""Observability: process-wide metrics and deep invariant auditing.

Two halves, documented in ``docs/OBSERVABILITY.md``:

* :mod:`repro.obs.metrics` — a zero-dependency registry of counters,
  gauges, and monotonic timers that the library's hot paths (prime
  issuance, SC-record rewrites, query operators) report into.  Disabled
  by default; every instrumented call site pays one boolean check.
* :mod:`repro.obs.audit` — an invariant auditor that cross-checks a
  labeled tree and its SC table end to end, returning a structured
  violation report instead of a bare bool.

Typical use::

    from repro.obs import metrics, audit_ordered_document

    with metrics.collecting() as registry:
        document = OrderedDocument(parse_document(xml))
        document.insert_child(document.root, 0)
    print(registry.snapshot()["counters"])

    audit_ordered_document(document).raise_if_failed()

Import-order note: instrumented modules (``labeling.prime``,
``order.sc_table``, ...) import :mod:`repro.obs.metrics` at module load,
while :mod:`repro.obs.audit` imports those same modules to know what to
audit.  The audit symbols are therefore re-exported lazily (PEP 562) so
importing the package never closes that cycle.
"""

from typing import Any, List

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry, collecting

__all__ = [
    "metrics",
    "MetricsRegistry",
    "collecting",
    "AuditReport",
    "Violation",
    "audit_any",
    "audit_ordered_document",
    "audit_scheme",
    "audit_sc_table",
]

_AUDIT_EXPORTS = (
    "AuditReport",
    "Violation",
    "audit_any",
    "audit_ordered_document",
    "audit_scheme",
    "audit_sc_table",
)


def __getattr__(name: str) -> Any:
    """Resolve audit re-exports on first access (avoids the import cycle)."""
    if name in _AUDIT_EXPORTS:
        from repro.obs import audit

        return getattr(audit, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    """Advertise the lazy exports alongside the eager ones."""
    return sorted(set(globals()) | set(_AUDIT_EXPORTS))
