"""Deep invariant auditor for labeled trees and SC tables.

:class:`repro.order.document.OrderedDocument.check` answers "is the
document consistent?" with a bare bool — useless for diagnosing *which*
invariant broke after a thousand-update churn run.  This module
cross-checks the full system end to end and returns a structured
:class:`AuditReport` naming every violated invariant, the offending
subject, and what was expected.

Invariants checked (the catalogue in ``docs/OBSERVABILITY.md``):

``label.self-divides``
    Every label's self-label divides its value (Section 3's product
    construction; a corrupted label breaks the modulo ancestor test).
``label.parent-chain``
    ``label.parent_value`` equals the actual parent's label value for
    every non-root node, and the root's label is exactly ``(1, 1)``.
``label.distinct-self``
    Non-root prime self-labels are pairwise distinct (they serve as CRT
    moduli); Opt2 power-of-two leaf self-labels only within one parent.
``label.ancestor-test``
    The scheme's label-only ancestor test agrees with a ground-truth tree
    walk on sampled node pairs (exhaustive on small trees).
``sc.residue-range``
    Every CRT residue is strictly below its modulus (Theorem 1's
    precondition; the overflow the paper never discusses).
``sc.coprime``
    Each record's moduli are pairwise coprime.
``sc.crt-value``
    Each record's cached SC value reproduces every stored residue.
``sc.max-prime``
    Each record's routing key equals the maximum of its moduli.
``sc.registration``
    The SC table covers exactly the non-root labeled nodes — no missing
    registrations, no orphans surviving a delete.
``sc.routing``
    ``record_for`` (O(1) index) and ``record_for_by_scan`` (the paper's
    literal max-prime scan) return the same record for every node.
``order.preorder``
    Sorting nodes by SC-derived order reproduces the tree's preorder
    sequence exactly, and the root's order is 0.

Usage::

    from repro.obs import audit_ordered_document

    report = audit_ordered_document(document)
    if not report.ok:
        print(report.summary())
        report.raise_if_failed()
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import AuditError
from repro.labeling.base import LabelingScheme
from repro.labeling.prime import PrimeLabel, PrimeScheme
from repro.obs import metrics
from repro.order.document import OrderedDocument
from repro.order.sc_table import SCTable
from repro.primes.euclid import gcd

__all__ = [
    "Violation",
    "AuditReport",
    "audit_ordered_document",
    "audit_scheme",
    "audit_sc_table",
    "audit_any",
]


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which rule, on what subject, and the details."""

    invariant: str
    message: str
    subject: Optional[str] = None

    def __str__(self) -> str:
        where = f" [{self.subject}]" if self.subject else ""
        return f"{self.invariant}{where}: {self.message}"


@dataclass
class AuditReport:
    """Structured result of one audit run.

    ``checks`` maps invariant name to the number of individual checks
    performed under it, so "passed" is distinguishable from "never ran".
    """

    violations: List[Violation] = field(default_factory=list)
    checks: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True iff no invariant was violated."""
        return not self.violations

    def checked(self, invariant: str, count: int = 1) -> None:
        """Record that ``count`` checks ran under ``invariant``."""
        self.checks[invariant] = self.checks.get(invariant, 0) + count

    def flag(self, invariant: str, message: str, subject: Optional[str] = None) -> None:
        """Record one violation."""
        self.violations.append(Violation(invariant, message, subject))

    def merge(self, other: "AuditReport") -> "AuditReport":
        """Fold another report's checks and violations into this one."""
        self.violations.extend(other.violations)
        for invariant, count in other.checks.items():
            self.checked(invariant, count)
        return self

    def summary(self) -> str:
        """Human-readable multi-line summary (violations first)."""
        total = sum(self.checks.values())
        lines = [
            f"audit: {total} checks across {len(self.checks)} invariants, "
            f"{len(self.violations)} violation(s)"
        ]
        for violation in self.violations:
            lines.append(f"  FAIL {violation}")
        for invariant in sorted(self.checks):
            lines.append(f"  ok   {invariant} ({self.checks[invariant]} checks)")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        """Raise :class:`repro.errors.AuditError` when any invariant broke."""
        if self.violations:
            raise AuditError(self.summary())


def _sampled_pairs(
    count: int, samples: int, seed: int
) -> List[tuple]:
    """Index pairs to test: exhaustive when small, else seeded random."""
    if count * (count - 1) <= samples:
        return [(i, j) for i in range(count) for j in range(count) if i != j]
    rng = random.Random(seed)
    pairs = []
    for _ in range(samples):
        first = rng.randrange(count)
        second = rng.randrange(count - 1)
        if second >= first:
            second += 1
        pairs.append((first, second))
    return pairs


def audit_scheme(
    scheme: LabelingScheme,
    ancestor_samples: int = 256,
    seed: int = 0,
) -> AuditReport:
    """Audit a labeling scheme against its own tree (no SC table needed).

    Runs the label-structure invariants (prime-specific checks only when
    ``scheme`` is a :class:`PrimeScheme`) plus the sampled ancestor-test
    agreement, which applies to every scheme.
    """
    report = AuditReport()
    root = scheme.root
    nodes = list(root.iter_preorder())

    if isinstance(scheme, PrimeScheme):
        seen_self: Dict[object, str] = {}
        for node in nodes:
            label: PrimeLabel = scheme.label_of(node)
            report.checked("label.self-divides")
            if label.self_label < 1 or label.value % label.self_label:
                report.flag(
                    "label.self-divides",
                    f"self-label {label.self_label} does not divide value {label.value}",
                    node.path(),
                )
            report.checked("label.parent-chain")
            if node.is_root:
                if label.value != 1 or label.self_label != 1:
                    report.flag(
                        "label.parent-chain",
                        f"root label must be (1, 1), got ({label.value}, {label.self_label})",
                        node.path(),
                    )
            else:
                parent_label: PrimeLabel = scheme.label_of(node.parent)
                if label.parent_value != parent_label.value:
                    report.flag(
                        "label.parent-chain",
                        f"parent_value {label.parent_value} != parent's label "
                        f"{parent_label.value}",
                        node.path(),
                    )
                report.checked("label.distinct-self")
                # Opt2 power-of-two leaf self-labels repeat across parents
                # by design (the parent factor keeps full labels unique), so
                # they need only be distinct among siblings; prime
                # self-labels must be globally fresh.
                self_label = label.self_label
                key: object = (
                    (id(node.parent), self_label)
                    if self_label & (self_label - 1) == 0
                    else self_label
                )
                previous = seen_self.get(key)
                if previous is not None:
                    report.flag(
                        "label.distinct-self",
                        f"self-label {self_label} already used by {previous}",
                        node.path(),
                    )
                else:
                    seen_self[key] = node.path()

    for i, j in _sampled_pairs(len(nodes), ancestor_samples, seed):
        first, second = nodes[i], nodes[j]
        report.checked("label.ancestor-test")
        truth = first.is_ancestor_of(second)
        claimed = scheme.is_ancestor(first, second)
        if truth != claimed:
            report.flag(
                "label.ancestor-test",
                f"label test says {claimed}, tree says {truth}",
                f"{first.path()} vs {second.path()}",
            )
    return report


def audit_sc_table(table: SCTable) -> AuditReport:
    """Audit one SC table's internal invariants (no tree required)."""
    report = AuditReport()
    for index, record in enumerate(table.records):
        moduli = record.system.moduli
        subject = f"record #{index}"
        for modulus in moduli:
            residue = record.system.residue(modulus)
            report.checked("sc.residue-range")
            if not 0 <= residue < modulus:
                report.flag(
                    "sc.residue-range",
                    f"residue {residue} out of range for modulus {modulus}",
                    subject,
                )
        for position, first in enumerate(moduli):
            for second in moduli[position + 1 :]:
                report.checked("sc.coprime")
                if gcd(first, second) != 1:
                    report.flag(
                        "sc.coprime",
                        f"moduli {first} and {second} share a factor",
                        subject,
                    )
        report.checked("sc.crt-value")
        if not record.system.check():
            report.flag(
                "sc.crt-value",
                f"SC value {record.sc} does not reproduce the stored residues",
                subject,
            )
        if moduli:
            report.checked("sc.max-prime")
            if record.max_prime != max(moduli):
                report.flag(
                    "sc.max-prime",
                    f"max_prime {record.max_prime} != max modulus {max(moduli)}",
                    subject,
                )
    for self_label, _order in table.orders().items():
        report.checked("sc.routing")
        try:
            direct = table.record_for(self_label)
            scanned = table.record_for_by_scan(self_label)
        except Exception as error:  # routing itself broke
            report.flag("sc.routing", f"lookup raised {error!r}", str(self_label))
            continue
        if direct is not scanned:
            report.flag(
                "sc.routing",
                "record_for and record_for_by_scan disagree",
                str(self_label),
            )
    return report


def audit_ordered_document(
    document: OrderedDocument,
    ancestor_samples: int = 256,
    seed: int = 0,
) -> AuditReport:
    """Cross-check an :class:`OrderedDocument` end to end.

    Runs every invariant in the module catalogue: label structure,
    sampled ancestor agreement, SC-table internals, registration
    completeness, routing equivalence, and preorder/order agreement.
    Returns the combined :class:`AuditReport`; never raises on violations
    (call :meth:`AuditReport.raise_if_failed` for that).
    """
    with metrics.timed("audit.run"):
        report = audit_scheme(
            document.scheme, ancestor_samples=ancestor_samples, seed=seed
        )
        report.merge(audit_sc_table(document.sc_table))

        nodes = list(document.root.iter_preorder())
        expected_labels = {
            document.label_of(node).self_label for node in nodes if not node.is_root
        }
        registered = set(document.sc_table.orders())
        report.checked("sc.registration")
        missing = expected_labels - registered
        orphaned = registered - expected_labels
        if missing:
            report.flag(
                "sc.registration",
                f"self-labels missing from the SC table: {sorted(missing)[:10]}",
            )
        if orphaned:
            report.flag(
                "sc.registration",
                f"SC table holds self-labels of no live node: {sorted(orphaned)[:10]}",
            )

        report.checked("order.preorder", len(nodes))
        orders = [document.order_of(node) for node in nodes]
        if orders and orders[0] != 0:
            report.flag("order.preorder", f"root order is {orders[0]}, expected 0")
        problems = [
            (nodes[i], orders[i], orders[i + 1])
            for i in range(len(orders) - 1)
            if orders[i] >= orders[i + 1]
        ]
        for node, order, following in problems[:10]:
            report.flag(
                "order.preorder",
                f"order {order} not below its preorder successor's {following}",
                node.path(),
            )
        metrics.incr("audit.runs")
        metrics.incr("audit.violations", len(report.violations))
    return report


def audit_any(subject: Any, **kwargs: Any) -> AuditReport:
    """Dispatch on subject type (convenience for the CLI's ``--audit``)."""
    if isinstance(subject, OrderedDocument):
        return audit_ordered_document(subject, **kwargs)
    if isinstance(subject, SCTable):
        return audit_sc_table(subject)
    if isinstance(subject, LabelingScheme):
        return audit_scheme(subject, **kwargs)
    raise TypeError(f"cannot audit {type(subject).__name__}")
