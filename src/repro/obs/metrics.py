"""Process-wide metrics: counters, gauges, and monotonic timers.

Every hot path in the library (prime issuance, SC-record rewrites, query
operators) reports what it did through this module so the paper's coarse
"relabeled nodes" counter (Figure 18) stops being the only window into
update cost.  Design constraints, in order:

1. **Zero dependencies** — stdlib only, importable from every package
   without cycles (this module imports nothing from ``repro``).
2. **Near-zero overhead when disabled** — collection is off by default;
   every helper checks one module-level boolean and returns immediately,
   so instrumented hot loops pay a single predictable branch.
3. **Deterministic names** — counters form a stable catalogue (documented
   in ``docs/OBSERVABILITY.md``) so benchmark artifacts can be compared
   across runs and versions.

Usage::

    from repro.obs import metrics

    with metrics.collecting() as registry:
        ...  # labeled/ordered/queried work
        print(registry.snapshot())

    # or imperatively:
    metrics.enable()
    ...
    print(metrics.snapshot())
    metrics.disable()

Instrumentation sites use the module-level helpers::

    metrics.incr("primes.issued")
    metrics.gauge("primes.cache_size", len(cache))
    with metrics.timed("query.evaluate"):
        ...

Timers use :func:`time.perf_counter` (monotonic; never wall-clock).  The
registry is process-global and not thread-synchronized: increments are
GIL-atomic dictionary updates, which is accurate enough for observability
counters; do not use it for billing.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Dict, Iterator, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "registry",
    "enabled",
    "enable",
    "disable",
    "collecting",
    "incr",
    "gauge",
    "timed",
    "snapshot",
    "reset",
]

#: Module-level switch — the no-op fast path reads only this name.
_enabled: bool = False


class Counter:
    """A monotonically increasing integer (e.g. ``sc.records_touched``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> int:
        """Add ``amount`` (default 1); returns the new value."""
        self.value += amount
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value that can move both ways (e.g. cache size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        """Record the latest observed value."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Timer:
    """Aggregated durations of one named operation (monotonic clock)."""

    __slots__ = ("name", "count", "total_seconds", "max_seconds")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        """Fold one observed duration into the aggregate."""
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        """Average duration over all recorded calls (0.0 when unused)."""
        return self.total_seconds / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"Timer({self.name}: n={self.count}, total={self.total_seconds:.6f}s)"


class MetricsRegistry:
    """Holds every named counter, gauge, and timer of one process.

    Normally accessed through the module-level helpers and the global
    instance returned by :func:`registry`; tests may construct private
    registries and swap them in with :func:`collecting`.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    # ------------------------------------------------------------------
    # Instrument factories (get-or-create, stable identity per name)
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        """The timer registered under ``name``, created on first use."""
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = Timer(name)
        return instrument

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        """Current value of a counter (0 if it never fired)."""
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable copy of every instrument's current state.

        Shape::

            {"counters": {name: int},
             "gauges":   {name: float},
             "timers":   {name: {"count": int, "total_s": float,
                                 "mean_s": float, "max_s": float}}}
        """
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "timers": {
                name: {
                    "count": t.count,
                    "total_s": t.total_seconds,
                    "mean_s": t.mean_seconds,
                    "max_s": t.max_seconds,
                }
                for name, t in sorted(self._timers.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (names and values)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry the module-level helpers write to."""
    return _registry


def enabled() -> bool:
    """Whether collection is currently on."""
    return _enabled


def enable() -> None:
    """Turn collection on (instruments start recording)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn collection off (helpers return immediately)."""
    global _enabled
    _enabled = False


class collecting:
    """Context manager: enable collection into a fresh scoped registry.

    Swaps in a private :class:`MetricsRegistry` (so concurrent library
    state cannot leak between scopes), enables collection, and restores
    the previous registry and enabled-flag on exit::

        with metrics.collecting() as registry:
            scheme.label_tree(root)
        print(registry.counter_value("primes.issued"))
    """

    __slots__ = ("_scoped", "_saved_registry", "_saved_enabled")

    def __init__(self) -> None:
        self._scoped = MetricsRegistry()
        self._saved_registry: Optional[MetricsRegistry] = None
        self._saved_enabled = False

    def __enter__(self) -> MetricsRegistry:
        global _registry, _enabled
        self._saved_registry = _registry
        self._saved_enabled = _enabled
        _registry = self._scoped
        _enabled = True
        return self._scoped

    def __exit__(self, *exc_info: object) -> None:
        global _registry, _enabled
        assert self._saved_registry is not None
        _registry = self._saved_registry
        _enabled = self._saved_enabled


# ----------------------------------------------------------------------
# Module-level fast-path helpers (the only API hot code should call)
# ----------------------------------------------------------------------


def incr(name: str, amount: int = 1) -> None:
    """Increment counter ``name`` by ``amount``; no-op while disabled."""
    if not _enabled:
        return
    _registry.counter(name).inc(amount)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value``; no-op while disabled."""
    if not _enabled:
        return
    _registry.gauge(name).set(value)


class timed:
    """Time a named operation — usable as context manager or decorator.

    As a context manager::

        with metrics.timed("query.evaluate"):
            rows = engine.evaluate(query)

    As a decorator (the enabled-check happens per call, so decorating at
    import time costs nothing while collection is off)::

        @metrics.timed("join.nested_loop")
        def nested_loop_join(...): ...
    """

    __slots__ = ("name", "_start")

    def __init__(self, name: str):
        self.name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "timed":
        self._start = time.perf_counter() if _enabled else None
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None and _enabled:
            _registry.timer(self.name).record(time.perf_counter() - self._start)

    def __call__(self, func: Callable) -> Callable:
        """Wrap ``func`` so each call is timed under this instance's name."""
        name = self.name

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _enabled:
                return func(*args, **kwargs)
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                _registry.timer(name).record(time.perf_counter() - start)

        return wrapper


def snapshot() -> Dict[str, Any]:
    """Snapshot of the *current* registry (scoped or global)."""
    return _registry.snapshot()


def reset() -> None:
    """Reset the current registry in place (keeps the enabled flag)."""
    _registry.reset()


def _iter_nonzero_counters() -> Iterator[Counter]:
    """Counters that fired at least once (internal; used by the CLI)."""
    for counter in _registry._counters.values():
        if counter.value:
            yield counter
