"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail; this shim lets
``pip install -e .`` fall back to the classic ``setup.py develop`` path.
Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
