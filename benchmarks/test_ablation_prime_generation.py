"""Ablation: strategies for supplying the label primes.

The scheme's bulk-labeling cost is dominated by prime generation.  This
bench compares the shipped approach (sieve bootstrap + segmented-sieve
extension, via PrimeGenerator) against one-at-a-time Miller–Rabin search
and a plain oversized sieve.
"""

import pytest

from repro.primes.gen import PrimeGenerator
from repro.primes.primality import next_prime
from repro.primes.sieve import primes_first_n

COUNT = 20_000


def generator_strategy():
    generator = PrimeGenerator()
    return [generator.get_prime() for _ in range(COUNT)]


def miller_rabin_strategy():
    primes = []
    candidate = 2
    for _ in range(COUNT):
        primes.append(candidate)
        candidate = next_prime(candidate)
    return primes


def bulk_sieve_strategy():
    return primes_first_n(COUNT)


STRATEGIES = {
    "generator": generator_strategy,
    "miller-rabin": miller_rabin_strategy,
    "bulk-sieve": bulk_sieve_strategy,
}


@pytest.mark.parametrize("strategy", list(STRATEGIES))
def test_ablation_prime_generation(benchmark, strategy):
    primes = benchmark.pedantic(STRATEGIES[strategy], rounds=2)
    assert len(primes) == COUNT
    assert primes[-1] == 224_737  # the 20,000th prime, same for all
    benchmark.extra_info["largest_prime"] = primes[-1]
