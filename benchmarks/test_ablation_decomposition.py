"""Ablation: tree decomposition for deep documents (Section 3.2's pointer
to Kaplan/Milo/Shabo).

On a deep chain-heavy tree, decomposing into bounded-depth components
shrinks the prime scheme's maximum label, at the price of a two-part
(global, local) label and a slightly costlier ancestor test.
"""

import pytest

from repro.datasets.random_tree import RandomTreeBuilder
from repro.labeling.decompose import decompose_tree
from repro.labeling.prime import PrimeScheme


def deep_tree():
    return RandomTreeBuilder(seed=13, max_depth=24, max_fanout=3).build(2_000)


def prime_factory():
    return PrimeScheme(reserved_primes=0, power2_leaves=False)


def test_ablation_flat_labeling(benchmark):
    tree = deep_tree()

    def label():
        scheme = prime_factory()
        scheme.label_tree(tree)
        return scheme.max_label_bits()

    bits = benchmark(label)
    benchmark.extra_info["max_label_bits"] = bits


@pytest.mark.parametrize("max_depth", [3, 6, 12], ids=lambda d: f"depth{d}")
def test_ablation_decomposed_labeling(benchmark, max_depth):
    tree = deep_tree()

    def label():
        return decompose_tree(tree, prime_factory, max_depth=max_depth).max_label_bits()

    bits = benchmark(label)
    benchmark.extra_info["max_label_bits"] = bits


def test_ablation_decomposition_shrinks_labels(benchmark):
    def measure():
        tree = deep_tree()
        flat_scheme = prime_factory()
        flat_scheme.label_tree(tree)
        flat = flat_scheme.max_label_bits()
        decomposed = decompose_tree(tree, prime_factory, max_depth=4).max_label_bits()
        return flat, decomposed

    flat, decomposed = benchmark.pedantic(measure, rounds=1)
    benchmark.extra_info["flat_bits"] = flat
    benchmark.extra_info["decomposed_bits"] = decomposed
    assert decomposed < flat
