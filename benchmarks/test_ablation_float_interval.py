"""Ablation: how long the QRS float-interval scheme survives hot-spot
insertions before precision forces a full relabel.

Section 2's criticism of the floating-point interval idea: "the
representation of a floating point number is constrained by the number of
bits in the mantissa. Once again, when the number of insertions exceeds
certain limits, re-labeling is necessary."  This bench measures that limit:
repeated insertion into the *same* gap halves the available interval each
time, so the insertions-before-relabel budget is linear in the mantissa
width — tiny compared to the prime scheme's unlimited budget.
"""

import pytest

from repro.errors import LabelOverflowError
from repro.labeling.interval import FloatIntervalScheme
from repro.labeling.prime import PrimeScheme
from repro.xmlkit.builder import element

MANTISSAS = (8, 16, 24, 52)


def hotspot_insertions_until_relabel(mantissa_bits: int) -> int:
    tree = element("r", element("a"), element("b"))
    scheme = FloatIntervalScheme(mantissa_bits=mantissa_bits)
    scheme.label_tree(tree)
    count = 0
    while count < 10_000:
        try:
            scheme.try_insert_leaf(tree, index=1)
        except LabelOverflowError:
            return count
        count += 1
    return count


@pytest.mark.parametrize("mantissa", MANTISSAS, ids=[f"m{m}" for m in MANTISSAS])
def test_float_interval_exhaustion(benchmark, mantissa):
    survived = benchmark.pedantic(
        hotspot_insertions_until_relabel, args=(mantissa,), rounds=1
    )
    benchmark.extra_info["insertions_before_relabel"] = survived
    # each hot-spot insertion consumes ~2 mantissa bits (quartering the gap)
    assert mantissa // 4 <= survived <= mantissa


def test_prime_scheme_has_no_such_limit(benchmark):
    """The contrast: 5,000 hot-spot insertions, zero collateral relabels."""

    def run():
        tree = element("r", element("a"), element("b"))
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=False)
        scheme.label_tree(tree)
        collateral = 0
        for _ in range(5_000):
            report = scheme.insert_leaf(tree, index=1)
            collateral += report.count - 1  # anything beyond the new node
        return collateral

    collateral = benchmark.pedantic(run, rounds=1)
    benchmark.extra_info["collateral_relabels"] = collateral
    assert collateral == 0
