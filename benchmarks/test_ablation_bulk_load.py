"""Ablation: bulk-load strategies for a document's prime labels.

Compares three ways to get from XML text to a full set of prime labels:

* parse into a tree, then label the tree (the default path),
* stream labels in one SAX pass without materializing the tree,
* parse + label + build the full ordered document (labels + SC table).

The streaming path should sit at or below the tree path (no tree
allocation); the ordered path adds the CRT work the SC table needs.
"""

import pytest

from repro.datasets.shakespeare import play
from repro.labeling.prime import PrimeScheme
from repro.order.document import OrderedDocument
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serialize import serialize
from repro.xmlkit.streaming import stream_prime_labels


@pytest.fixture(scope="module")
def document_text():
    return serialize(play(seed=21, node_budget=4000))


def test_bulk_load_tree_then_label(benchmark, document_text):
    def run():
        tree = parse_document(document_text)
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=False)
        scheme.label_tree(tree)
        return len(list(scheme.labeled_nodes()))

    count = benchmark(run)
    benchmark.extra_info["labels"] = count
    assert count == 4000


def test_bulk_load_streaming(benchmark, document_text):
    def run():
        return sum(1 for _record in stream_prime_labels(document_text))

    count = benchmark(run)
    benchmark.extra_info["labels"] = count
    assert count == 4000


def test_bulk_load_ordered_document(benchmark, document_text):
    def run():
        tree = parse_document(document_text)
        document = OrderedDocument(tree, group_size=5)
        return document.sc_table.node_count + 1

    count = benchmark(run)
    benchmark.extra_info["labels"] = count
    assert count == 4000


def test_streaming_equals_tree_labels(benchmark, document_text):
    def check():
        tree = parse_document(document_text)
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=False)
        scheme.label_tree(tree)
        for record, node in zip(stream_prime_labels(document_text), tree.iter_preorder()):
            assert record.label == scheme.label_of(node)
        return True

    assert benchmark.pedantic(check, rounds=1)
