"""Ablation: structural join algorithms over the labeling schemes.

The paper's motivating workload is the ancestor/descendant containment
join.  This bench joins ACT (ancestors) against LINE (descendants) on a
play document and compares:

* nested-loop with interval labels (the naive O(A·D) plan),
* Stack-Tree-Desc with interval labels (one merge pass),
* nested-loop with prime labels (modulo tests),
* the prime-label merge join (divisibility-driven stack).

All four produce identical pair sets (asserted); the timings show the
merge joins' asymptotic win.
"""

import pytest

from repro.datasets.shakespeare import play
from repro.labeling.interval import XissIntervalScheme
from repro.labeling.prime import PrimeScheme
from repro.query.join import nested_loop_join, prime_merge_join, stack_tree_join


@pytest.fixture(scope="module")
def workload():
    tree = play(seed=4, node_budget=4000)
    interval = XissIntervalScheme().label_tree(tree)
    prime = PrimeScheme(reserved_primes=0, power2_leaves=False).label_tree(tree)
    acts = tree.find_by_tag("ACT")
    lines = tree.find_by_tag("LINE")
    return interval, prime, acts, lines


def test_join_nested_loop_interval(benchmark, workload):
    interval, _prime, acts, lines = workload
    pairs = benchmark(nested_loop_join, interval, acts, lines)
    benchmark.extra_info["pairs"] = len(pairs)
    assert len(pairs) == len(lines)


def test_join_stack_tree_interval(benchmark, workload):
    interval, _prime, acts, lines = workload
    pairs = benchmark(stack_tree_join, interval, acts, lines)
    benchmark.extra_info["pairs"] = len(pairs)
    assert len(pairs) == len(lines)


def test_join_nested_loop_prime(benchmark, workload):
    _interval, prime, acts, lines = workload
    pairs = benchmark(nested_loop_join, prime, acts, lines)
    benchmark.extra_info["pairs"] = len(pairs)
    assert len(pairs) == len(lines)


def test_join_prime_merge(benchmark, workload):
    _interval, prime, acts, lines = workload
    pairs = benchmark(prime_merge_join, prime, acts, lines)
    benchmark.extra_info["pairs"] = len(pairs)
    assert len(pairs) == len(lines)


def test_join_agreement(benchmark, workload):
    interval, prime, acts, lines = workload

    def canonical(pairs):
        return sorted((id(a), id(d)) for a, d in pairs)

    def check():
        baseline = canonical(nested_loop_join(interval, acts, lines))
        assert canonical(stack_tree_join(interval, acts, lines)) == baseline
        assert canonical(nested_loop_join(prime, acts, lines)) == baseline
        assert canonical(prime_merge_join(prime, acts, lines)) == baseline
        return len(baseline)

    pairs = benchmark.pedantic(check, rounds=1)
    benchmark.extra_info["pairs"] = pairs
