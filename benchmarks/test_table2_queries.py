"""Table 2: the nine test queries and their retrieved-node counts.

Timed operation: one evaluation per query on the interval store (the
fastest baseline, i.e. the workload's intrinsic cost); ``extra_info``
records the retrieved count — Table 2's right-hand column.
"""

import pytest

from repro.bench.response import PAPER_QUERIES

QUERIES = dict(PAPER_QUERIES)


@pytest.mark.parametrize("query_name", list(QUERIES))
def test_table2_query(benchmark, query_engines, query_name):
    engine = query_engines["interval"]
    rows = benchmark(engine.evaluate, QUERIES[query_name])
    benchmark.extra_info["query"] = QUERIES[query_name]
    benchmark.extra_info["nodes_retrieved"] = len(rows)


def test_table2_counts_consistent_across_schemes(benchmark, query_engines):
    def all_counts():
        return {
            scheme: [engine.count(text) for _n, text in PAPER_QUERIES]
            for scheme, engine in query_engines.items()
        }

    counts = benchmark.pedantic(all_counts, rounds=1)
    assert counts["interval"] == counts["prime"] == counts["prefix-2"]
    benchmark.extra_info["counts"] = dict(
        zip([name for name, _t in PAPER_QUERIES], counts["prime"])
    )
