"""Shared fixtures for the benchmark suite.

Each ``test_*`` file regenerates one exhibit of the paper (see DESIGN.md's
per-experiment index).  Session-scoped fixtures hold the corpora so the
expensive builds happen once; the ``benchmark`` fixture then times only the
operation the exhibit is about.

Run with::

    pytest benchmarks/ --benchmark-only

Printed ``extra_info`` fields carry the measured values (label bits,
relabel counts, retrieved rows) that correspond to the paper's y-axes.
"""

from __future__ import annotations

import pytest

from repro.bench.response import build_query_corpus
from repro.query.engine import QueryEngine
from repro.query.store import LabelStore


@pytest.fixture(scope="session")
def query_corpus():
    """The Section 5.2 corpus: plays replicated 5 times (scaled for CI)."""
    return build_query_corpus(plays=8, replicate=5, seed=100)


@pytest.fixture(scope="session")
def query_engines(query_corpus):
    """One engine per contender scheme, built once."""
    return {
        scheme: QueryEngine(LabelStore.build(query_corpus, scheme=scheme))
        for scheme in ("interval", "prime", "prefix-2")
    }
