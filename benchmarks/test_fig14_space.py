"""Figure 14: fixed-length label size per scheme across the nine datasets.

Timed operation: a full labeling pass; ``extra_info["max_label_bits"]`` is
the figure's bar height.  The whole-figure check asserts the paper's two
headline cases (prime wins the wide D4, prefix wins the deep D7).
"""

import pytest

from repro.bench.spaces import LEAF_THRESHOLD_BITS, figure14_table
from repro.datasets.niagara import DATASET_NAMES, build_dataset
from repro.labeling.compact import DahlgaardScheme, FraigniaudKormanScheme
from repro.labeling.interval import XissIntervalScheme
from repro.labeling.prefix import Prefix2Scheme
from repro.labeling.prime import PrimeScheme

SCHEMES = {
    "interval": XissIntervalScheme,
    "prime": lambda: PrimeScheme(
        reserved_primes=64, power2_leaves=True, leaf_threshold_bits=LEAF_THRESHOLD_BITS
    ),
    "prefix-2": Prefix2Scheme,
    "dkr": DahlgaardScheme,
    "fk-depth": FraigniaudKormanScheme,
}


@pytest.mark.parametrize("scheme_name", list(SCHEMES))
@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig14_label_size(benchmark, dataset, scheme_name):
    tree = build_dataset(dataset)

    def label():
        scheme = SCHEMES[scheme_name]()
        scheme.label_tree(tree)
        return scheme.max_label_bits()

    bits = benchmark(label)
    benchmark.extra_info["max_label_bits"] = bits
    assert bits > 0


def test_fig14_whole_figure(benchmark):
    table = benchmark.pedantic(figure14_table, rounds=1)
    print()
    print(table.to_text())
    by_name = {row["dataset"]: row for row in table.as_dicts()}
    assert by_name["D4"]["Prime"] < by_name["D4"]["Prefix-2"]
    assert by_name["D7"]["Prefix-2"] < by_name["D7"]["Prime"]
    wins = sum(1 for row in table.as_dicts() if row["Prime"] <= row["Prefix-2"])
    benchmark.extra_info["prime_wins_vs_prefix2"] = f"{wins}/{len(table.rows)}"
    assert wins >= 5  # "the best savings ... for the majority of the datasets"
    for row in table.as_dicts():
        # The compact ancestry baselines must sit at or below the interval
        # scheme everywhere — they answer strictly less (no parent/child,
        # no order) in strictly fewer bits.
        assert row["DKR"] <= row["Interval"], row
        assert row["FK-depth"] <= row["Interval"], row
