"""Figure 3: actual vs estimated bit length of the first 10,000 primes.

The benchmark times the full series generation (sieve + PNT estimates);
``extra_info`` records the worst-case estimation error, which the paper
argues is small.
"""

from repro.primes.estimates import figure3_series


def test_fig03_prime_estimate(benchmark):
    series = benchmark(figure3_series, 10_000)
    assert len(series) == 10_000
    worst_error = max(abs(actual - estimated) for _n, actual, estimated in series)
    benchmark.extra_info["worst_bit_error"] = round(worst_error, 3)
    benchmark.extra_info["last_prime_bits"] = series[-1][1]
    # the paper's Figure 3 claim: the estimate tracks the actual bit length
    assert worst_error <= 2.0
