"""Figure 18: order-sensitive ACT insertions into a Hamlet-sized play.

The headline experiment: interval and prefix relabel thousands of nodes
per ordered insertion; the prime scheme instead rewrites SC records (group
size 5), cutting the cost by roughly the group-size factor.
"""

import pytest

from repro.bench.updates import (
    _ordered_cost_prime,
    _ordered_cost_static,
    figure18_table,
)
from repro.datasets.shakespeare import hamlet
from repro.labeling.interval import XissIntervalScheme
from repro.labeling.prefix import Prefix2Scheme


@pytest.mark.parametrize("scheme_name", ["interval", "prefix-2", "prime"])
def test_fig18_five_act_insertions(benchmark, scheme_name):
    costs = []

    def run():
        if scheme_name == "interval":
            result = _ordered_cost_static(XissIntervalScheme(), hamlet())
        elif scheme_name == "prefix-2":
            result = _ordered_cost_static(Prefix2Scheme(), hamlet())
        else:
            result = _ordered_cost_prime(hamlet(), group_size=5)
        costs.append(result)
        return result

    benchmark.pedantic(run, rounds=1)
    benchmark.extra_info["relabels_per_insert"] = costs[0]
    benchmark.extra_info["total_relabels"] = sum(costs[0])


def test_fig18_whole_figure(benchmark):
    table = benchmark.pedantic(figure18_table, rounds=1)
    print()
    print(table.to_text())
    for row in table.as_dicts():
        assert row["prime"] * 3 < row["interval"]
        assert row["prime"] * 3 < row["prefix-2"]
    benchmark.extra_info["prime_over_interval"] = round(
        sum(table.column("prime")) / sum(table.column("interval")), 3
    )
