"""Figure 5: analytic max self-label size vs depth (F = 15).

The paper's shape: the prefix curves are flat in depth while the prime
curve grows linearly, crossing them around depth 4–5.
"""

from repro.bench.models import figure5_table


def test_fig05_depth_model(benchmark):
    table = benchmark(figure5_table, range(0, 11), 15)
    print()
    print(table.to_text())
    prime = table.column("Prime")
    prefix2 = table.column("Prefix-2")
    benchmark.extra_info["prime_bits_at_depth_10"] = round(prime[-1], 2)
    assert len(set(table.column("Prefix-1"))) == 1  # flat in depth
    assert prime[1] < prefix2[1]  # prime wins shallow
    assert prime[-1] > prefix2[-1]  # prefix wins deep
