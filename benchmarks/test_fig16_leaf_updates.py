"""Figure 16: relabeling cost of an unordered leaf insertion.

Timed operation: the insertion itself (on a fresh document per round, via
``benchmark.pedantic``'s setup hook).  ``extra_info["nodes_relabeled"]`` is
the figure's y-value: ~N for interval, 2 for optimized prime, 1 for
prefix.
"""

import pytest

from repro.bench.updates import DOCUMENT_SIZES, _build_document, _deepest_leaf
from repro.labeling.interval import XissIntervalScheme
from repro.labeling.prefix import Prefix2Scheme
from repro.labeling.prime import PrimeScheme

SCHEMES = {
    "interval": XissIntervalScheme,
    "prime": lambda: PrimeScheme(reserved_primes=64, power2_leaves=True),
    "prefix-2": Prefix2Scheme,
}

SIZES = (1_000, 5_000, 10_000)


@pytest.mark.parametrize("scheme_name", list(SCHEMES))
@pytest.mark.parametrize("size", SIZES, ids=[f"n{s}" for s in SIZES])
def test_fig16_leaf_insert(benchmark, size, scheme_name):
    counts = []

    def setup():
        root = _build_document(size)
        scheme = SCHEMES[scheme_name]()
        scheme.label_tree(root)
        return (scheme, _deepest_leaf(root)), {}

    def insert(scheme, target):
        report = scheme.insert_leaf(target, tag="new-leaf")
        counts.append(report.count)
        return report

    benchmark.pedantic(insert, setup=setup, rounds=3)
    benchmark.extra_info["nodes_relabeled"] = counts[0]
    expected = {"interval": size // 2, "prime": 2, "prefix-2": 1}
    if scheme_name == "interval":
        assert counts[0] >= expected["interval"]
    else:
        assert counts[0] == expected[scheme_name]


def test_fig16_whole_figure(benchmark):
    from repro.bench.updates import figure16_table

    table = benchmark.pedantic(figure16_table, args=(DOCUMENT_SIZES,), rounds=1)
    print()
    print(table.to_text())
    assert all(v == 2 for v in table.column("prime"))
    assert all(v == 1 for v in table.column("prefix-2"))
    assert all(v >= n * 0.5 for v, n in zip(table.column("interval"), DOCUMENT_SIZES))
