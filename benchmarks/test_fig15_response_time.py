"""Figure 15: query response time per labeling scheme.

One benchmark per (query, scheme).  pytest-benchmark's comparison table IS
the figure: for each query the interval and prime stores should sit close
together, with prefix-2 slower (its ``check_prefix`` user-defined function
marshals labels through strings, as a DBMS UDF would).
"""

import pytest

from repro.bench.response import PAPER_QUERIES

QUERIES = dict(PAPER_QUERIES)
SCHEMES = ("interval", "prime", "prefix-2")


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("query_name", list(QUERIES))
def test_fig15_response_time(benchmark, query_engines, query_name, scheme):
    engine = query_engines[scheme]
    rows = benchmark(engine.evaluate, QUERIES[query_name])
    benchmark.extra_info["nodes_retrieved"] = len(rows)
    benchmark.group = query_name


def test_fig15_shape(benchmark, query_engines):
    """Aggregate check: total prefix-2 time exceeds interval and prime."""
    import time

    def total_time(scheme):
        engine = query_engines[scheme]
        started = time.perf_counter()
        for _name, text in PAPER_QUERIES:
            engine.evaluate(text)
        return time.perf_counter() - started

    def measure():
        return {scheme: total_time(scheme) for scheme in SCHEMES}

    totals = benchmark.pedantic(measure, rounds=1)
    benchmark.extra_info["total_seconds"] = {k: round(v, 4) for k, v in totals.items()}
    assert totals["prefix-2"] > totals["interval"]
    assert totals["prefix-2"] > totals["prime"]
