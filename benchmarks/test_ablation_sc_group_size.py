"""Ablation: SC-table group size vs ordered-update cost and SC value width.

The paper fixes the group size at 5 without exploring the trade-off.  A
bigger group concentrates order into fewer records — fewer record updates
per insertion (cheaper updates) but an SC value that is the product of
more primes (wider integers to store and recompute).  This bench sweeps
group sizes and reports both sides.
"""

import pytest

from repro.bench.updates import _ordered_cost_prime
from repro.datasets.shakespeare import play
from repro.order.document import OrderedDocument

GROUP_SIZES = (1, 5, 20, 100)


@pytest.mark.parametrize("group_size", GROUP_SIZES, ids=[f"k{k}" for k in GROUP_SIZES])
def test_ablation_group_size_update_cost(benchmark, group_size):
    costs = []

    def run():
        result = _ordered_cost_prime(
            play(seed=8, node_budget=2000), group_size=group_size
        )
        costs.append(result)
        return result

    benchmark.pedantic(run, rounds=1)
    benchmark.extra_info["total_cost"] = sum(costs[0])


@pytest.mark.parametrize("group_size", GROUP_SIZES, ids=[f"k{k}" for k in GROUP_SIZES])
def test_ablation_group_size_sc_width(benchmark, group_size):
    def build():
        document = OrderedDocument(play(seed=8, node_budget=2000), group_size=group_size)
        return max(record.sc.bit_length() for record in document.sc_table)

    width = benchmark(build)
    benchmark.extra_info["max_sc_bits"] = width
    assert width > 0


def test_ablation_group_size_tradeoff(benchmark):
    """Bigger groups: monotonically cheaper updates, wider SC values."""

    def measure():
        costs, widths = {}, {}
        for group_size in GROUP_SIZES:
            costs[group_size] = sum(
                _ordered_cost_prime(play(seed=8, node_budget=2000), group_size=group_size)
            )
            document = OrderedDocument(
                play(seed=8, node_budget=2000), group_size=group_size
            )
            widths[group_size] = max(r.sc.bit_length() for r in document.sc_table)
        return costs, widths

    costs, widths = benchmark.pedantic(measure, rounds=1)
    benchmark.extra_info["update_cost"] = costs
    benchmark.extra_info["sc_bits"] = widths
    assert costs[1] > costs[5] > costs[20] > costs[100]
    assert widths[1] < widths[5] < widths[20] < widths[100]
