"""Ablation: DataGuide pre-filtering on a heterogeneous collection.

The Niagara setting is a repository of documents with many different
DTDs.  A DataGuide (Lore's path summary, the paper's related work) lets
the engine skip documents whose path structure cannot match a query.
This bench runs tag-selective queries over a mixed collection of play,
book-ish and department documents, with and without the guide.
"""

import pytest

from repro.datasets.niagara import build_dataset
from repro.datasets.shakespeare import shakespeare_corpus
from repro.query.dataguide import DataGuide, GuidedQueryEngine
from repro.query.engine import QueryEngine
from repro.query.store import LabelStore

QUERIES = (
    "/PLAY//SPEECH//LINE",
    "/university//course//title",
    "/SigmodRecord//article//author",
)


@pytest.fixture(scope="module")
def mixed_store():
    documents = shakespeare_corpus(plays=10, seed=3) + [
        build_dataset("D1"),
        build_dataset("D6"),
        build_dataset("D9"),
    ]
    return LabelStore.build(documents, scheme="interval")


@pytest.mark.parametrize("query", QUERIES)
def test_plain_engine(benchmark, mixed_store, query):
    engine = QueryEngine(mixed_store)
    rows = benchmark(engine.evaluate, query)
    benchmark.extra_info["rows"] = len(rows)


@pytest.mark.parametrize("query", QUERIES)
def test_guided_engine(benchmark, mixed_store, query):
    engine = GuidedQueryEngine(mixed_store)
    rows = benchmark(engine.evaluate, query)
    benchmark.extra_info["rows"] = len(rows)
    assert engine.documents_skipped > 0  # the guide pruned something


def test_guide_equivalence_and_build_cost(benchmark, mixed_store):
    def build_and_compare():
        guide = DataGuide([row.node for row in mixed_store.rows if row.depth == 0])
        plain = QueryEngine(mixed_store)
        guided = GuidedQueryEngine(mixed_store, guide=guide)
        for query in QUERIES:
            assert [r.element_id for r in plain.evaluate(query)] == [
                r.element_id for r in guided.evaluate(query)
            ]
        return guide.path_count

    paths = benchmark.pedantic(build_and_compare, rounds=1)
    benchmark.extra_info["distinct_paths"] = paths
