"""Figure 4: analytic max self-label size vs fan-out (D = 2).

Regenerates the three curves (Prefix-1, Prefix-2, Prime) over fan-out
1..50 and checks the paper's headline shape: Prefix-1 linear, Prime nearly
flat.
"""

from repro.bench.models import figure4_table


def test_fig04_fanout_model(benchmark):
    table = benchmark(figure4_table, range(1, 51), 2)
    print()
    print(table.to_text())
    growth = {
        name: table.column(name)[-1] - table.column(name)[0]
        for name in ("Prefix-1", "Prefix-2", "Prime")
    }
    benchmark.extra_info["bit_growth_over_fanout"] = {
        k: round(v, 2) for k, v in growth.items()
    }
    assert growth["Prime"] < growth["Prefix-2"] < growth["Prefix-1"]
