"""Ablation: scan vs merge evaluation strategies in the query engine.

The scan strategy tests every (context, candidate) pair; the merge
strategy runs a stack-based structural join per document.  On selective
steps they tie; on dense steps (many contexts × many candidates, e.g.
``/ACT//LINE``) the merge pass wins by the avoided quadratic factor.
"""

import pytest

from repro.datasets.shakespeare import shakespeare_corpus
from repro.query.engine import QueryEngine
from repro.query.store import LabelStore

QUERIES = {
    "dense": "/ACT//LINE",
    "chained": "/PLAY//ACT//SCENE//SPEECH//LINE",
    "selective": "/PLAY//PERSONAE/PERSONA",
}


@pytest.fixture(scope="module")
def store():
    return LabelStore.build(shakespeare_corpus(plays=6, seed=9), scheme="prime")


@pytest.mark.parametrize("strategy", ["scan", "merge"])
@pytest.mark.parametrize("shape", list(QUERIES))
def test_engine_strategy(benchmark, store, shape, strategy):
    engine = QueryEngine(store, strategy=strategy)
    rows = benchmark(engine.evaluate, QUERIES[shape])
    benchmark.extra_info["rows"] = len(rows)
    benchmark.group = shape


def test_strategies_agree(benchmark, store):
    def check():
        scan = QueryEngine(store, strategy="scan")
        merge = QueryEngine(store, strategy="merge")
        counts = {}
        for shape, query in QUERIES.items():
            scan_rows = sorted(r.element_id for r in scan.evaluate(query))
            merge_rows = sorted(r.element_id for r in merge.evaluate(query))
            assert scan_rows == merge_rows, shape
            counts[shape] = len(scan_rows)
        return counts

    counts = benchmark.pedantic(check, rounds=1)
    benchmark.extra_info["rows"] = counts
