"""Ablation: twig (tree-pattern) matching cost across labeling schemes.

Tree patterns are the workload the paper's introduction motivates; this
bench matches two twigs of different selectivity against a play document
under each scheme's label tests.  The prime scheme's modulo test and the
interval containment test should be comparable; prefix pays for its
bit-string prefix checks.
"""

import pytest

from repro.datasets.shakespeare import play
from repro.labeling.interval import XissIntervalScheme
from repro.labeling.prefix import Prefix2Scheme
from repro.labeling.prime import PrimeScheme
from repro.query.twig import TwigPattern, match_twig

SCHEMES = {
    "interval": XissIntervalScheme,
    "prime": lambda: PrimeScheme(reserved_primes=0, power2_leaves=False),
    "prefix-2": Prefix2Scheme,
}

PATTERNS = {
    "selective": "SCENE[/TITLE]//SPEECH/SPEAKER",
    "dense": "ACT//SPEECH[/SPEAKER]/LINE",
}


@pytest.fixture(scope="module")
def document():
    return play(seed=14, node_budget=3000)


@pytest.mark.parametrize("scheme_name", list(SCHEMES))
@pytest.mark.parametrize("shape", list(PATTERNS))
def test_twig_matching(benchmark, document, shape, scheme_name):
    scheme = SCHEMES[scheme_name]()
    scheme.label_tree(document)
    nodes = list(document.iter_preorder())
    pattern = TwigPattern.parse(PATTERNS[shape])
    matches = benchmark(match_twig, scheme, nodes, pattern)
    benchmark.extra_info["matches"] = len(matches)
    benchmark.group = shape
    assert matches


def test_twig_counts_agree_across_schemes(benchmark, document):
    def check():
        nodes = list(document.iter_preorder())
        counts = {}
        for name, factory in SCHEMES.items():
            scheme = factory()
            scheme.label_tree(document)
            counts[name] = [
                len(match_twig(scheme, nodes, TwigPattern.parse(p)))
                for p in PATTERNS.values()
            ]
        assert counts["interval"] == counts["prime"] == counts["prefix-2"]
        return counts["prime"]

    counts = benchmark.pedantic(check, rounds=1)
    benchmark.extra_info["matches"] = counts
