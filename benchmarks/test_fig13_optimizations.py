"""Figure 13: effect of the prime scheme's optimizations on label size.

One benchmark per (dataset, configuration); the timed operation is the
labeling pass itself, and ``extra_info["max_label_bits"]`` is the figure's
y-value.  A final whole-figure check asserts the paper's monotone story:
Opt2 <= Original and Opt3 <= Opt2 on every dataset.
"""

import pytest

from repro.bench.spaces import LEAF_THRESHOLD_BITS, figure13_table
from repro.datasets.niagara import DATASET_NAMES, build_dataset
from repro.labeling.pathcollapse import collapse_tree
from repro.labeling.prime import PrimeScheme

CONFIGS = {
    "original": dict(reserved_primes=0, power2_leaves=False),
    "opt1": dict(reserved_primes=64, power2_leaves=False),
    "opt2": dict(
        reserved_primes=64, power2_leaves=True, leaf_threshold_bits=LEAF_THRESHOLD_BITS
    ),
    "opt3": dict(
        reserved_primes=64, power2_leaves=True, leaf_threshold_bits=LEAF_THRESHOLD_BITS
    ),
}


@pytest.mark.parametrize("config", list(CONFIGS))
@pytest.mark.parametrize("name", DATASET_NAMES)
def test_fig13_label_size(benchmark, name, config):
    tree = build_dataset(name)
    if config == "opt3":
        tree = collapse_tree(tree).to_element()

    def label():
        scheme = PrimeScheme(**CONFIGS[config])
        scheme.label_tree(tree)
        return scheme.max_label_bits()

    bits = benchmark(label)
    benchmark.extra_info["max_label_bits"] = bits
    assert bits > 0


def test_fig13_whole_figure(benchmark):
    table = benchmark.pedantic(figure13_table, rounds=1)
    print()
    print(table.to_text())
    rows = table.as_dicts()
    # Opt3 never loses to Opt2 on any dataset; Opt1/Opt2 pay off in
    # aggregate (individual flat outliers like D4 can tie or slip a bit,
    # exactly as the paper notes Opt1's improvement is "limited").
    for row in rows:
        assert row["Opt3"] <= row["Opt2"]
    total = {key: sum(row[key] for row in rows) for key in ("Original", "Opt1", "Opt2", "Opt3")}
    assert total["Opt1"] <= total["Original"]
    assert total["Opt2"] < total["Opt1"]
    assert total["Opt3"] < total["Opt2"]
