"""Figure 17: relabeling cost of a non-leaf insertion.

The workload wraps the first level-4 node (SAX parse order) in a new
parent.  Interval relabels everything after the insertion point; prime and
prefix relabel only the new node's subtree.
"""

import pytest

from repro.bench.updates import DOCUMENT_SIZES, _build_document, _first_node_at_level
from repro.labeling.interval import XissIntervalScheme
from repro.labeling.prefix import Prefix2Scheme
from repro.labeling.prime import PrimeScheme

SCHEMES = {
    "interval": XissIntervalScheme,
    "prime": lambda: PrimeScheme(reserved_primes=64, power2_leaves=True),
    "prefix-2": Prefix2Scheme,
}

SIZES = (1_000, 5_000, 10_000)


@pytest.mark.parametrize("scheme_name", list(SCHEMES))
@pytest.mark.parametrize("size", SIZES, ids=[f"n{s}" for s in SIZES])
def test_fig17_nonleaf_insert(benchmark, size, scheme_name):
    counts = []

    def setup():
        root = _build_document(size)
        scheme = SCHEMES[scheme_name]()
        scheme.label_tree(root)
        target = _first_node_at_level(root, 4)
        return (scheme, target.parent, target.child_index), {}

    def wrap(scheme, parent, index):
        report = scheme.insert_internal(parent, index, index + 1, tag="wrapper")
        counts.append(report.count)
        return report

    benchmark.pedantic(wrap, setup=setup, rounds=3)
    benchmark.extra_info["nodes_relabeled"] = counts[0]
    if scheme_name == "interval":
        assert counts[0] >= size * 0.5
    else:
        assert counts[0] < size * 0.5


def test_fig17_dynamic_schemes_match(benchmark):
    """Prime and prefix relabel the same node set: the wrapped subtree."""
    from repro.bench.updates import figure17_table

    table = benchmark.pedantic(figure17_table, args=(DOCUMENT_SIZES,), rounds=1)
    print()
    print(table.to_text())
    assert table.column("prime") == table.column("prefix-2")
