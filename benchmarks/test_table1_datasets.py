"""Table 1: build each synthetic dataset and verify its characteristics."""

import pytest

from repro.datasets.niagara import DATASET_NAMES, build_dataset, dataset_spec


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_table1_dataset_build(benchmark, name):
    spec = dataset_spec(name)
    tree = benchmark(build_dataset, name)
    stats = tree.stats()
    benchmark.extra_info["topic"] = spec.topic
    benchmark.extra_info["nodes"] = stats.node_count
    benchmark.extra_info["depth"] = stats.depth
    benchmark.extra_info["max_fanout"] = stats.max_fanout
    assert stats.node_count == spec.max_nodes
