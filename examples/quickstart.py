"""Quickstart: label an XML document with prime numbers and query it.

Run with::

    python examples/quickstart.py

Walks through the paper's core idea on a small document: every node's
label is the product of its parent's label and a fresh prime, so "is x an
ancestor of y?" becomes a single modulo operation on two integers —
no tree traversal, ever.
"""

from repro import PrimeScheme, parse_document, serialize

DOCUMENT = """
<library>
  <book id="tcp">
    <title>TCP/IP Illustrated</title>
    <author>Stevens</author>
  </book>
  <book id="db">
    <title>Database Systems</title>
    <author>Garcia-Molina</author>
    <author>Ullman</author>
    <author>Widom</author>
  </book>
</library>
"""


def main() -> None:
    root = parse_document(DOCUMENT)

    # Label every element: the original top-down scheme (Figure 2).
    scheme = PrimeScheme(reserved_primes=0, power2_leaves=False)
    scheme.label_tree(root)

    print("Labels (value = parent's value x own prime):")
    for node in root.iter_preorder():
        label = scheme.label_of(node)
        indent = "  " * node.depth
        print(f"  {indent}{node.tag:<10} value={label.value:<8} self={label.self_label}")

    # Ancestor tests are pure integer arithmetic on the labels.
    db_book = root.children[1]
    ullman = db_book.children[2]
    stevens = root.children[0].children[1]
    print()
    print("Ancestor tests (label(y) mod label(x) == 0):")
    print(f"  library ancestor-of ullman?  {scheme.is_ancestor(root, ullman)}")
    print(f"  db-book ancestor-of ullman?  {scheme.is_ancestor(db_book, ullman)}")
    print(f"  db-book ancestor-of stevens? {scheme.is_ancestor(db_book, stevens)}")

    # Dynamic insertion: a fresh prime, nobody else relabeled.
    report = scheme.insert_leaf(db_book, tag="year")
    print()
    print(f"Inserted <year> under the second book; nodes relabeled: {report.count}")
    new_label = scheme.label_of(report.new_node)
    print(f"  new label: value={new_label.value} self={new_label.self_label}")

    print()
    print("Document after the update:")
    print(serialize(root, indent=2))


if __name__ == "__main__":
    main()
