"""Run the paper's nine queries over a Shakespeare corpus, three ways.

Run with::

    python examples/xpath_queries.py

Builds the Section 5.2 workload (synthetic plays, replicated), loads one
label store per scheme, evaluates every Table 2 query, and prints the
retrieved counts plus per-scheme timings — a miniature of Figure 15.
Also shows the SQL each query would become in a relational back-end.
"""

import time

from repro import LabelStore, QueryEngine, to_sql
from repro.bench.harness import ResultTable
from repro.bench.response import PAPER_QUERIES, build_query_corpus


def main() -> None:
    corpus = build_query_corpus(plays=6, replicate=5, seed=100)
    total_nodes = sum(doc.stats().node_count for doc in corpus)
    print(f"Corpus: {len(corpus)} play documents, {total_nodes} element nodes")
    print()

    engines = {}
    for scheme in ("interval", "prime", "prefix-2"):
        started = time.perf_counter()
        engines[scheme] = QueryEngine(LabelStore.build(corpus, scheme=scheme))
        print(f"  built {scheme:<9} store in {time.perf_counter() - started:.2f}s")
    print()

    table = ResultTable(
        title="Paper queries: retrieved nodes and per-scheme times (ms)",
        columns=("query", "text", "#nodes", "interval", "prime", "prefix-2"),
    )
    for name, text in PAPER_QUERIES:
        timings = {}
        count = None
        for scheme, engine in engines.items():
            started = time.perf_counter()
            rows = engine.evaluate(text)
            timings[scheme] = (time.perf_counter() - started) * 1000
            count = len(rows)
        table.add_row(
            name,
            text,
            count,
            round(timings["interval"], 1),
            round(timings["prime"], 1),
            round(timings["prefix-2"], 1),
        )
    print(table.to_text())

    print()
    print("SQL translation of Q2 for the prime-labeled element table:")
    print()
    print(to_sql("/PLAY//ACT[3]//Following::ACT", scheme="prime"))


if __name__ == "__main__":
    main()
