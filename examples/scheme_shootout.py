"""Scheme shoot-out: space and update costs across all labeling schemes.

Run with::

    python examples/scheme_shootout.py [dataset]

Labels one of the Table 1 datasets (default D6) with every scheme in the
library — the paper's three contenders plus the extension baselines — and
prints the space requirement and the cost of the two update workloads from
Figures 16/17.
"""

import sys

from repro import (
    BottomUpPrimeScheme,
    DeweyScheme,
    FloatIntervalScheme,
    Prefix1Scheme,
    Prefix2Scheme,
    PrimeScheme,
    StartEndIntervalScheme,
    XissIntervalScheme,
)
from repro.bench.harness import ResultTable
from repro.datasets.niagara import build_dataset, dataset_spec

SCHEMES = [
    ("interval (XISS)", XissIntervalScheme),
    ("interval (start/end)", StartEndIntervalScheme),
    ("interval (float)", FloatIntervalScheme),
    ("prefix-1", Prefix1Scheme),
    ("prefix-2", Prefix2Scheme),
    ("dewey", DeweyScheme),
    ("prime bottom-up", BottomUpPrimeScheme),
    ("prime (original)", lambda: PrimeScheme(reserved_primes=0, power2_leaves=False)),
    (
        "prime (Opt1+Opt2)",
        lambda: PrimeScheme(reserved_primes=64, power2_leaves=True, leaf_threshold_bits=16),
    ),
]


def deepest_leaf(root):
    depth = root.stats().depth
    return next(iter(root.iter_level(depth)))


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "D6"
    spec = dataset_spec(name)
    print(f"Dataset {name} ({spec.topic}), {spec.max_nodes} nodes")
    print()

    table = ResultTable(
        title=f"Scheme shoot-out on {name}",
        columns=(
            "scheme",
            "max label (bits)",
            "total (KiB)",
            "leaf-insert relabels",
            "wrap relabels",
        ),
    )
    for label, factory in SCHEMES:
        tree = build_dataset(name)
        scheme = factory()
        scheme.label_tree(tree)
        max_bits = scheme.max_label_bits()
        total_kib = scheme.total_label_bits() / 8 / 1024

        leaf_report = scheme.insert_leaf(deepest_leaf(tree), tag="new")

        tree = build_dataset(name)
        scheme = factory()
        scheme.label_tree(tree)
        target = next(n for n in tree.iter_preorder() if not n.is_root and n.children)
        index = target.child_index
        wrap_report = scheme.insert_internal(
            target.parent, index, index + 1, tag="wrapper"
        )

        table.add_row(label, max_bits, round(total_kib, 2), leaf_report.count, wrap_report.count)

    print(table.to_text())
    print()
    print(
        "Reading guide: interval schemes are compact but relabel ~N nodes per\n"
        "insert; prefix/prime relabel only locally; the optimized prime scheme\n"
        "keeps labels compact even at high fan-out (the paper's Figure 14)."
    )


if __name__ == "__main__":
    main()
