"""End-to-end repository pipeline: stream → store → persist → query.

Run with::

    python examples/repository_pipeline.py

Simulates how a downstream system would actually adopt the library on a
Niagara-style multi-document repository:

1. stream-label incoming documents in one SAX pass (O(depth) memory),
2. bulk-load a prime label store over the whole collection,
3. persist it to a compact binary file and reload it,
4. build a DataGuide and answer path + twig queries from labels alone.
"""

import tempfile
import time
from pathlib import Path

from repro import (
    DataGuide,
    GuidedQueryEngine,
    LabelStore,
    PrimeScheme,
    TwigPattern,
    load_store,
    match_twig,
    save_store,
    serialize,
    stream_prime_labels,
)
from repro.datasets.niagara import build_dataset
from repro.datasets.shakespeare import shakespeare_corpus


def main() -> None:
    # A heterogeneous repository: plays + three Niagara-style datasets.
    documents = shakespeare_corpus(plays=5, seed=11) + [
        build_dataset("D1"),
        build_dataset("D6"),
    ]
    total = sum(doc.stats().node_count for doc in documents)
    print(f"Repository: {len(documents)} documents, {total} element nodes")

    # 1. Streaming pass over the serialized form of the first play.
    text = serialize(documents[0])
    started = time.perf_counter()
    streamed = list(stream_prime_labels(text))
    elapsed = time.perf_counter() - started
    print(
        f"\n1. Streamed {len(streamed)} labels in one SAX pass "
        f"({elapsed * 1000:.1f} ms); first three:"
    )
    for record in streamed[:3]:
        print(f"   {record.path:<24} {record.label}")

    # 2. Bulk-load the label store.
    started = time.perf_counter()
    store = LabelStore.build(documents, scheme="prime")
    print(
        f"\n2. Loaded the element table: {len(store)} rows "
        f"in {time.perf_counter() - started:.2f}s"
    )

    # 3. Persist and reload.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "repository.labels"
        written = save_store(store, path)
        reloaded = load_store(path)
        print(
            f"\n3. Persisted to {written / 1024:.1f} KiB "
            f"({written / len(store):.1f} bytes/row); reloaded {len(reloaded)} rows"
        )

        # 4. Guided queries on the reloaded store.
        engine = GuidedQueryEngine(reloaded, guide=DataGuide(documents))
        for query in ("/PLAY//SPEECH//LINE", "/SigmodRecord//author", "/play//nothing"):
            rows = engine.evaluate(query)
            print(f"   {query:<28} -> {len(rows)} rows "
                  f"({engine.documents_skipped} documents skipped so far)")

    # Twig matching straight off the labels of one document.
    scheme = PrimeScheme(reserved_primes=0, power2_leaves=False)
    scheme.label_tree(documents[0])
    pattern = TwigPattern.parse("SCENE[/TITLE]//SPEECH/SPEAKER")
    matches = match_twig(scheme, list(documents[0].iter_preorder()), pattern)
    print(f"\n4. Twig {pattern.root} -> {len(matches)} SPEAKER bindings")


if __name__ == "__main__":
    main()
