"""Regenerate every paper exhibit into ``results/`` as CSV + JSON.

Run with::

    python examples/regenerate_all.py [--quick] [output_dir]

``--quick`` skips the slow exhibits (the query corpus and the update
sweeps) and finishes in seconds; the full run takes a few minutes and
reproduces every table and figure recorded in EXPERIMENTS.md.
"""

import sys
import time

from repro.bench.export import exhibit_builders, export_all_exhibits


def main() -> None:
    arguments = [argument for argument in sys.argv[1:]]
    quick = "--quick" in arguments
    if quick:
        arguments.remove("--quick")
    target = arguments[0] if arguments else "results"

    names = ", ".join(exhibit_builders(include_slow=not quick))
    print(f"Regenerating: {names}")
    started = time.perf_counter()
    written = export_all_exhibits(target, include_slow=not quick)
    elapsed = time.perf_counter() - started
    print(f"\nWrote {len(written)} files to {target}/ in {elapsed:.1f}s:")
    for path in written:
        print(f"  {path}")


if __name__ == "__main__":
    main()
