"""Order-sensitive XML with the SC table (the paper's Section 4 scenario).

Run with::

    python examples/ordered_bookstore.py

The motivating update from the paper: "if we need to insert a new author
as the second author ... we would have to push Tom and John to the 3rd and
4th sibling positions" — which forces interval and prefix schemes to
relabel, but costs the prime scheme only a few Chinese-Remainder-Theorem
record rewrites.
"""

from repro import OrderedAxes, OrderedDocument, parse_document

DOCUMENT = """
<book>
  <title>Ordered XML for Fun and Profit</title>
  <author>Jane</author>
  <author>Tom</author>
  <author>John</author>
  <publisher>ICDE Press</publisher>
</book>
"""


def show_sc_table(document: OrderedDocument) -> None:
    print("  SC table:")
    for index, record in enumerate(document.sc_table):
        print(
            f"    record {index}: SC={record.sc}  max_prime={record.max_prime}  "
            f"(covers {len(record)} nodes)"
        )


def show_authors(document: OrderedDocument, axes: OrderedAxes) -> None:
    authors = axes.descendants_by_tag(document.root, "author")
    for position, author in enumerate(authors, start=1):
        label = document.label_of(author)
        print(
            f"    author[{position}] = {author.text:<6} "
            f"(self-label {label.self_label}, order {document.order_of(author)})"
        )


def main() -> None:
    document = OrderedDocument(parse_document(DOCUMENT), group_size=5)
    axes = OrderedAxes(document)

    print("Initial state:")
    show_authors(document, axes)
    show_sc_table(document)

    # Order-sensitive queries — answered from labels + SC values only.
    authors = axes.descendants_by_tag(document.root, "author")
    second = axes.position(authors, 2)
    print()
    print(f"  book/author[2] -> {second.text}")
    siblings = axes.following_siblings(second)
    print(f"  following-siblings of {second.text}: {[n.text or n.tag for n in siblings]}")

    # The paper's update: insert a new SECOND author.
    first_author = authors[0]
    report = document.insert_after(first_author, tag="author")
    report.new_node.text = "Alice"
    print()
    print(
        f"Inserted Alice as the new second author: "
        f"{report.node_relabels} node(s) relabeled, "
        f"{report.sc_records_updated} SC record(s) rewritten "
        f"(total cost {report.total_cost})"
    )

    print()
    print("After the update (Tom and John pushed to 3rd and 4th):")
    show_authors(document, axes)
    show_sc_table(document)

    authors = axes.descendants_by_tag(document.root, "author")
    print()
    print(f"  book/author[2] -> {axes.position(authors, 2).text}")
    print(f"  book/author[3] -> {axes.position(authors, 3).text}")
    assert document.check(), "SC-derived order must match document order"
    print()
    print("Consistency check passed: SC order == document order.")


if __name__ == "__main__":
    main()
