"""Unit tests for repro.obs.metrics — registry, fast path, scoping."""

import json

from repro.obs import metrics


class TestInstruments:
    def test_counter_get_or_create_stable_identity(self):
        registry = metrics.MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        registry.counter("a").inc()
        registry.counter("a").inc(3)
        assert registry.counter_value("a") == 4
        assert registry.counter_value("never-touched") == 0

    def test_gauge_moves_both_ways(self):
        registry = metrics.MetricsRegistry()
        registry.gauge("g").set(10)
        registry.gauge("g").set(3)
        assert registry.snapshot()["gauges"]["g"] == 3

    def test_timer_aggregates_count_total_mean_max(self):
        timer = metrics.Timer("t")
        timer.record(0.5)
        timer.record(1.5)
        assert timer.count == 2
        assert timer.total_seconds == 2.0
        assert timer.mean_seconds == 1.0
        assert timer.max_seconds == 1.5

    def test_unused_timer_mean_is_zero(self):
        assert metrics.Timer("t").mean_seconds == 0.0


class TestRegistrySnapshot:
    def test_snapshot_shape_is_json_serializable(self):
        registry = metrics.MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.timer("t").record(0.25)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["timers"]["t"] == {
            "count": 1,
            "total_s": 0.25,
            "mean_s": 0.25,
            "max_s": 0.25,
        }

    def test_reset_drops_names_and_values(self):
        registry = metrics.MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "timers": {}}


class TestDisabledFastPath:
    def test_collection_is_off_by_default(self):
        assert not metrics.enabled()

    def test_incr_is_noop_while_disabled(self):
        metrics.incr("test.disabled.counter")
        assert metrics.registry().counter_value("test.disabled.counter") == 0

    def test_gauge_is_noop_while_disabled(self):
        metrics.gauge("test.disabled.gauge", 9)
        assert "test.disabled.gauge" not in metrics.snapshot()["gauges"]

    def test_timed_context_manager_is_noop_while_disabled(self):
        with metrics.timed("test.disabled.timer"):
            pass
        assert "test.disabled.timer" not in metrics.snapshot()["timers"]

    def test_timed_decorator_is_passthrough_while_disabled(self):
        @metrics.timed("test.disabled.decorated")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert "test.disabled.decorated" not in metrics.snapshot()["timers"]


class TestEnableDisable:
    def test_enable_records_into_global_registry(self):
        metrics.enable()
        try:
            metrics.incr("test.enabled.counter", 5)
            assert metrics.registry().counter_value("test.enabled.counter") == 5
        finally:
            metrics.disable()
            metrics.reset()
        assert not metrics.enabled()


class TestCollecting:
    def test_scope_isolates_and_restores(self):
        with metrics.collecting() as registry:
            assert metrics.enabled()
            assert metrics.registry() is registry
            metrics.incr("test.scoped")
            assert registry.counter_value("test.scoped") == 1
        assert not metrics.enabled()
        assert metrics.registry() is not registry
        assert metrics.registry().counter_value("test.scoped") == 0

    def test_nested_scopes_do_not_leak(self):
        with metrics.collecting() as outer:
            metrics.incr("test.outer")
            with metrics.collecting() as inner:
                metrics.incr("test.inner")
            assert metrics.registry() is outer
            assert inner.counter_value("test.inner") == 1
            assert inner.counter_value("test.outer") == 0
        assert outer.counter_value("test.outer") == 1
        assert outer.counter_value("test.inner") == 0

    def test_timed_context_manager_records_in_scope(self):
        with metrics.collecting() as registry:
            with metrics.timed("test.cm"):
                pass
        timer = registry.snapshot()["timers"]["test.cm"]
        assert timer["count"] == 1
        assert timer["total_s"] >= 0.0

    def test_timed_decorator_checks_enabled_per_call(self):
        @metrics.timed("test.decorated")
        def work():
            return 42

        assert work() == 42  # disabled: nothing recorded
        with metrics.collecting() as registry:
            assert work() == 42
            assert work() == 42
        assert registry.snapshot()["timers"]["test.decorated"]["count"] == 2
        assert "test.decorated" not in metrics.snapshot()["timers"]

    def test_timed_decorator_records_on_exception(self):
        @metrics.timed("test.raising")
        def boom():
            raise ValueError("expected")

        with metrics.collecting() as registry:
            try:
                boom()
            except ValueError:
                pass
        assert registry.snapshot()["timers"]["test.raising"]["count"] == 1

    def test_scope_restores_after_exception(self):
        try:
            with metrics.collecting():
                raise RuntimeError("expected")
        except RuntimeError:
            pass
        assert not metrics.enabled()
