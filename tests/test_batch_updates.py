"""Batched update pipeline: equivalence, atomicity, and the satellite fixes.

The batch path's contract is *byte-identity*: ``apply_batch`` coalesces
WAL appends and CRT solves but must produce exactly the state — trees,
labels, SC groups, accumulated cost, even the paper's per-op cost
counters — that applying the same ops one at a time would.  These tests
enforce the contract three ways:

* a randomized property test drives twin collections (one sequential,
  one batched) through the same mixed insert/delete scripts and
  fingerprints them after every round,
* an overflow-stress run asserts the *metrics* agree too (residue
  overflows, records touched, shift span, prime registrations), because
  coalescing that merely reached the same end state by a cheaper
  accounting would falsify Figure 18,
* crash and fault injection verify the durable layer's all-or-nothing
  half: a batch that dies mid-commit recovers to the pre-batch state,
  and a failed batch rolls back so the addressed retry applies exactly
  once.
"""

import os
import random

import pytest

from repro.durable import (
    CrashAfterAppends,
    DurableCollection,
    InjectedCrash,
    TornAppend,
    collection_fingerprint,
    recover,
)
from repro.errors import CapacityError, QueryEvaluationError
from repro.obs import metrics
from repro.obs.audit import audit_ordered_document
from repro.order.document import OrderedDocument
from repro.query import BatchOp, LiveCollection
from repro.resilient import (
    BreakerPolicy,
    ChaosInjector,
    ResilientCollection,
    RetryPolicy,
)
from repro.xmlkit.parser import parse_document

DOC = "<root><a><a1/><a2/></a><b/><c><d/><e/></c></root>"
#: The CI batch-soak matrix exports REPRO_WAL_FSYNC; locally default to
#: the strictest policy so the group-commit fsync path is exercised.
FSYNC = os.environ.get("REPRO_WAL_FSYNC", "always")


# ----------------------------------------------------------------------
# Script generation: ops addressed by pre-batch preorder position, so the
# same logical batch can be resolved against two independent twins.
# ----------------------------------------------------------------------


def random_batch_script(rng, root, size, step):
    """A mixed insert/delete script as (kind, preorder pos, index, tag).

    Delete targets are leaves (never ancestors of another op's target) and
    are excluded — along with their parents — from insert targets, so the
    batch is valid regardless of the order its ops interleave.
    """
    nodes = list(root.iter_preorder())
    position_of = {id(node): pos for pos, node in enumerate(nodes)}
    leaves = [node for node in nodes if not node.children and node is not root]
    doomed = rng.sample(leaves, min(len(leaves) // 3, max(1, size // 4))) if leaves else []
    excluded = {id(node) for node in doomed}
    excluded.update(id(node.parent) for node in doomed if node.parent is not None)
    safe = [node for node in nodes if id(node) not in excluded]

    script = []
    for i in range(max(0, size - len(doomed))):
        target = rng.choice(safe)
        roll = rng.random()
        if roll < 0.6 or target is root:
            script.append(
                ("insert_child", position_of[id(target)],
                 rng.randint(0, len(target.children)), f"n{step}x{i}")
            )
        elif roll < 0.8:
            script.append(("insert_before", position_of[id(target)], None, f"n{step}x{i}"))
        else:
            script.append(("insert_after", position_of[id(target)], None, f"n{step}x{i}"))
    script.extend(("delete", position_of[id(node)], None, "") for node in doomed)
    rng.shuffle(script)
    return script


def resolve_script(script, root):
    """Materialize a script into BatchOps against ``root``'s current tree."""
    nodes = list(root.iter_preorder())
    ops = []
    for kind, position, index, tag in script:
        node = nodes[position]
        if kind == "insert_child":
            ops.append(BatchOp.insert_child(node, index, tag=tag))
        elif kind == "insert_before":
            ops.append(BatchOp.insert_before(node, tag=tag))
        elif kind == "insert_after":
            ops.append(BatchOp.insert_after(node, tag=tag))
        else:
            ops.append(BatchOp.delete(node))
    return ops


def apply_one_by_one(collection, ops):
    for op in ops:
        if op.kind == "insert_child":
            collection.insert_child(op.node, op.index, tag=op.tag)
        elif op.kind == "insert_before":
            collection.insert_before(op.node, tag=op.tag)
        elif op.kind == "insert_after":
            collection.insert_after(op.node, tag=op.tag)
        else:
            collection.delete(op.node)


def sc_groups(collection):
    """Every document's SC groups as plain data: (self_label, order) lists."""
    return [
        ordered.sc_table.groups() for ordered in collection.ordered_documents
    ]


def store_rows(collection):
    """The queryable store's rows as comparable tuples."""
    return [
        (row.doc_id, row.element_id, row.tag, row.label, row.depth, row.parent_id)
        for row in collection.query("/root//*")
    ]


def assert_audit_clean(collection):
    for ordered in collection.ordered_documents:
        report = audit_ordered_document(ordered)
        assert report.ok, report.summary()


# ----------------------------------------------------------------------
# Tentpole property: batched == sequential, byte for byte
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 5])
def test_apply_batch_matches_one_by_one(seed):
    """Randomized batches are byte-identical to one-by-one application."""
    sequential = LiveCollection([parse_document(DOC)])
    batched = LiveCollection([parse_document(DOC)])
    rng = random.Random(seed)
    for step in range(6):
        script = random_batch_script(
            rng, sequential.documents[0], size=rng.randint(4, 12), step=step
        )
        apply_one_by_one(sequential, resolve_script(script, sequential.documents[0]))
        batched.apply_batch(resolve_script(script, batched.documents[0]))
        assert collection_fingerprint(batched) == collection_fingerprint(sequential)
    assert sc_groups(batched) == sc_groups(sequential)
    assert store_rows(batched) == store_rows(sequential)
    assert batched.total_update_cost == sequential.total_update_cost
    assert batched.check() and sequential.check()
    assert_audit_clean(batched)
    assert_audit_clean(sequential)


def test_batch_cost_accounting_matches_sequential_under_overflow():
    """Front insertions force residue overflows; every paper cost counter
    must agree between the batched and sequential runs — batching may only
    change *when* CRT solves happen, never what the cost model charges."""
    counters = (
        "sc.residue_overflows",
        "sc.records_touched",
        "sc.shift_span",
        "sc.registered",
        "sc.records_opened",
        "order.overflow_relabels",
    )

    def front_inserts(apply):
        collection = LiveCollection([parse_document("<root><a/><b/><c/></root>")])
        with metrics.collecting() as registry:
            apply(collection)
        return collection, {name: registry.counter_value(name) for name in counters}

    def sequentially(collection):
        root = collection.documents[0]
        for i in range(120):
            collection.insert_child(root, 1, tag=f"s{i}")

    def batched(collection):
        for chunk in range(12):
            root = collection.documents[0]
            collection.apply_batch(
                [BatchOp.insert_child(root, 1, tag=f"s{chunk * 10 + i}")
                 for i in range(10)]
            )

    seq_collection, seq_counts = front_inserts(sequentially)
    bat_collection, bat_counts = front_inserts(batched)
    assert seq_counts["sc.residue_overflows"] > 0  # the stress actually bit
    assert bat_counts == seq_counts
    assert bat_collection.total_update_cost == seq_collection.total_update_cost
    assert collection_fingerprint(bat_collection) == collection_fingerprint(
        seq_collection
    )
    assert_audit_clean(bat_collection)


def test_batch_report_totals_and_cost_charging():
    collection = LiveCollection([parse_document(DOC)])
    root = collection.documents[0]
    before = collection.total_update_cost
    report = collection.apply_batch(
        [BatchOp.insert_child(root, 0, tag="x"),
         BatchOp.insert_after(root.children[0], tag="y"),
         BatchOp.delete(root.children[-1])]
    )
    assert len(report) == 3
    assert report.total_cost == sum(r.total_cost for r in report.reports)
    assert report.node_relabels == sum(r.node_relabels for r in report.reports)
    assert report.sc_records_updated == sum(
        r.sc_records_updated for r in report.reports
    )
    assert collection.total_update_cost == before + report.total_cost


def test_empty_batch_is_a_noop():
    collection = LiveCollection([parse_document(DOC)])
    fingerprint = collection_fingerprint(collection)
    report = collection.apply_batch([])
    assert len(report) == 0 and report.total_cost == 0
    assert collection_fingerprint(collection) == fingerprint


def test_batch_op_validation():
    collection = LiveCollection([parse_document(DOC)])
    root = collection.documents[0]
    with pytest.raises(QueryEvaluationError):
        BatchOp("replace", root)  # unknown kind
    with pytest.raises(QueryEvaluationError):
        BatchOp("insert_child", root)  # insert_child needs an index


# ----------------------------------------------------------------------
# Durable layer: group commit, crash atomicity, rollback + retry
# ----------------------------------------------------------------------


def test_group_commit_is_one_wal_record(tmp_path):
    collection = DurableCollection.create(
        tmp_path / "col", [parse_document(DOC)], fsync=FSYNC
    )
    seq_before = collection.wal.next_seq
    report = collection.bulk_insert(
        [(collection.documents[0], 0, f"t{i}") for i in range(8)]
    )
    assert len(report) == 8
    assert collection.wal.next_seq == seq_before + 1  # 8 ops, one record
    live_fp = collection_fingerprint(collection.live)
    collection.close()
    recovered = recover(tmp_path / "col", verify=True)
    assert collection_fingerprint(recovered.collection) == live_fp


def test_batched_replay_matches_sequential_twin(tmp_path):
    """A recovered batch-written store equals a sequentially written one."""
    batched = DurableCollection.create(
        tmp_path / "batched", [parse_document(DOC)], fsync=FSYNC
    )
    sequential = DurableCollection.create(
        tmp_path / "sequential", [parse_document(DOC)], fsync=FSYNC
    )
    rng = random.Random(7)
    for step in range(4):
        script = random_batch_script(
            rng, batched.documents[0], size=rng.randint(3, 9), step=step
        )
        batched.apply_batch(resolve_script(script, batched.documents[0]))
        apply_one_by_one(
            sequential.live, resolve_script(script, sequential.documents[0])
        )
    live_fp = collection_fingerprint(batched.live)
    assert live_fp == collection_fingerprint(sequential.live)
    batched.close()
    recovered = recover(tmp_path / "batched", verify=True)
    assert collection_fingerprint(recovered.collection) == live_fp
    for document in recovered.collection.ordered_documents:
        assert audit_ordered_document(document).ok


def test_mid_batch_crash_recovers_pre_batch_state(tmp_path):
    """A crash during the group commit loses the *whole* batch: recovery
    lands on the last pre-batch durable state, never a half-applied one."""
    collection = DurableCollection.create(
        tmp_path / "col",
        [parse_document(DOC)],
        fsync=FSYNC,
        faults=CrashAfterAppends(3),
    )
    root = collection.documents[0]
    for i in range(3):  # three durable setup ops (appends #1-#3)
        collection.insert_child(root, 0, tag=f"pre{i}")
    pre_batch = collection_fingerprint(collection.live)
    with pytest.raises(InjectedCrash):
        collection.bulk_insert([(collection.documents[0], 0, "doomed")] * 5)
    recovered = recover(tmp_path / "col", verify=True)
    assert collection_fingerprint(recovered.collection) == pre_batch
    for document in recovered.collection.ordered_documents:
        assert audit_ordered_document(document).ok


def test_torn_batch_record_is_truncated_to_pre_batch_state(tmp_path):
    """A batch record torn mid-write (power cut) must be discarded whole —
    recovery must not replay a prefix of the batch."""
    collection = DurableCollection.create(
        tmp_path / "col",
        [parse_document(DOC)],
        fsync=FSYNC,
        faults=TornAppend(at=3, keep_bytes=24),
    )
    root = collection.documents[0]
    collection.insert_child(root, 0, tag="pre0")
    collection.insert_child(root, 0, tag="pre1")
    pre_batch = collection_fingerprint(collection.live)
    with pytest.raises(InjectedCrash):
        collection.bulk_insert([(collection.documents[0], 0, "doomed")] * 6)
    recovered = recover(tmp_path / "col", verify=True)
    assert collection_fingerprint(recovered.collection) == pre_batch


def test_failed_batch_rolls_back_and_addressed_retry_applies_once(tmp_path):
    """A mid-batch failure rolls memory back to the durable state; the
    addressed form of the same batch then retries cleanly (exactly once)."""
    collection = DurableCollection.create(
        tmp_path / "col", [parse_document(DOC)], fsync=FSYNC
    )
    collection.insert_child(collection.documents[0], 0, tag="pre")
    pre_batch = collection_fingerprint(collection.live)

    root = collection.documents[0]
    ops = [BatchOp.insert_child(root, 0, tag=f"b{i}") for i in range(4)]
    encoded = collection.encode_batch(ops)
    rollbacks_before = metrics.registry().counter_value("durable.batch_rollbacks")

    boom = {"armed": True}
    original = LiveCollection._apply_one

    def flaky_apply(self, doc, op, position=0):
        if boom["armed"] and op.tag == "b2":  # fail after a real prefix
            boom["armed"] = False
            raise OSError("injected mid-batch failure")
        return original(self, doc, op, position)

    LiveCollection._apply_one = flaky_apply
    try:
        with pytest.raises(OSError):
            collection.apply_batch_addressed(encoded)
    finally:
        LiveCollection._apply_one = original

    # Rolled back: memory matches the pre-batch durable state again.
    assert collection_fingerprint(collection.live) == pre_batch
    if metrics.enabled():
        assert (
            metrics.registry().counter_value("durable.batch_rollbacks")
            == rollbacks_before + 1
        )

    # The addressed batch retries against the rolled-back state.
    report = collection.apply_batch_addressed(encoded)
    assert len(report) == 4
    expected = DurableCollection.create(
        tmp_path / "twin", [parse_document(DOC)], fsync=FSYNC
    )
    expected.insert_child(expected.documents[0], 0, tag="pre")
    apply_one_by_one(
        expected.live,
        [BatchOp.insert_child(expected.documents[0], 0, tag=f"b{i}") for i in range(4)],
    )
    assert collection_fingerprint(collection.live) == collection_fingerprint(
        expected.live
    )
    collection.close()
    expected.close()


# ----------------------------------------------------------------------
# Resilient layer: batched chaos soak
# ----------------------------------------------------------------------


def _resilient(tmp_path, name, chaos):
    return ResilientCollection.create(
        tmp_path / name,
        [parse_document(DOC)],
        fsync=FSYNC,
        faults=chaos,
        retry=RetryPolicy(max_attempts=12, base_delay=0.0, max_delay=0.0, seed=5),
        breaker=BreakerPolicy(failure_threshold=11),
        sleep=lambda _s: None,
    )


def _run_batched_workload(collection, seed, rounds=18):
    rng = random.Random(seed)
    for step in range(rounds):
        # Re-fetch the root every round: a rolled-back batch attempt
        # replaces the in-memory trees, so node references go stale.
        root = collection.documents[0]
        script = random_batch_script(rng, root, size=rng.randint(3, 8), step=step)
        collection.apply_batch(resolve_script(script, root))
        if step % 6 == 5:
            collection.checkpoint()


@pytest.mark.parametrize("chaos_seed", [3, 11])
def test_batched_chaos_soak_is_byte_identical(tmp_path, chaos_seed):
    """The chaos soak, batched: transient faults at every WAL/snapshot
    site, each failed batch rolled back and retried as a unit."""
    chaos = ChaosInjector(rate=0.04, seed=chaos_seed, sleep=lambda _s: None)
    soaked = _resilient(tmp_path, f"soaked{chaos_seed}", chaos)
    twin = _resilient(tmp_path, f"twin{chaos_seed}", chaos=None)
    _run_batched_workload(soaked, seed=1234)
    _run_batched_workload(twin, seed=1234)

    assert chaos.total_injected > 0
    assert not soaked.degraded
    live_fp = collection_fingerprint(soaked.live)
    assert live_fp == collection_fingerprint(twin.live)

    soaked.close()
    recovered = recover(tmp_path / f"soaked{chaos_seed}", verify=True)
    assert collection_fingerprint(recovered.collection) == live_fp
    for document in recovered.collection.ordered_documents:
        report = audit_ordered_document(document)
        assert report.ok, report.summary()


# ----------------------------------------------------------------------
# Satellites: from_ordered validation, delete context, compact audit
# ----------------------------------------------------------------------


def test_from_ordered_rejects_mismatched_group_size():
    matching = OrderedDocument(parse_document(DOC), group_size=5)
    divergent = OrderedDocument(parse_document("<p><q/></p>"), group_size=3)
    with pytest.raises(QueryEvaluationError) as excinfo:
        LiveCollection.from_ordered([matching, divergent], group_size=5)
    # The error names the offending document and both policies.
    message = str(excinfo.value)
    assert "document 1" in message
    assert "3" in message and "5" in message


def test_delete_capacity_error_carries_document_index(monkeypatch):
    collection = LiveCollection(
        [parse_document(DOC), parse_document("<p><q/><r/></p>")]
    )
    monkeypatch.setattr(
        OrderedDocument,
        "delete",
        lambda self, node: (_ for _ in ()).throw(CapacityError("group full")),
    )
    victim = collection.documents[1].children[0]
    with pytest.raises(CapacityError) as excinfo:
        collection.delete(victim)
    assert excinfo.value.document == 1


def test_delete_charges_what_its_report_says():
    collection = LiveCollection([parse_document(DOC)])
    before = collection.total_update_cost
    report = collection.delete(collection.documents[0].children[0])
    assert collection.total_update_cost == before + report.total_cost


def test_compact_returns_per_document_record_counts():
    collection = LiveCollection(
        [parse_document(DOC), parse_document("<p><q/><r/><s/></p>")]
    )
    counts = collection.compact()
    assert len(counts) == 2
    assert counts == [
        len(ordered.sc_table.records) for ordered in collection.ordered_documents
    ]
    assert collection.check()
    assert_audit_clean(collection)
