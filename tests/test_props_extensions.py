"""Property-based tests for the extension modules: codecs, joins,
reconstruction, twigs, and a tokenizer fuzz pass."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XmlSyntaxError
from repro.labeling.codec import FixedWidthCodec, VarintCodec
from repro.labeling.interval import XissIntervalScheme
from repro.labeling.prefix import Prefix2Scheme
from repro.labeling.prime import PrimeScheme
from repro.labeling.reconstruct import (
    reconstruct_from_intervals,
    reconstruct_from_prefix,
    reconstruct_from_prime,
)
from repro.query.join import nested_loop_join, prime_merge_join, stack_tree_join
from repro.xmlkit.parser import parse_document
from repro.xmlkit.tree import XmlElement


@st.composite
def random_trees(draw, max_nodes=30):
    size = draw(st.integers(1, max_nodes))
    nodes = [XmlElement("n0")]
    for index in range(1, size):
        parent = nodes[draw(st.integers(0, index - 1))]
        nodes.append(parent.append(XmlElement(f"n{index % 7}")))
    return nodes[0]


def shapes_equal(a, b) -> bool:
    return a.tag == b.tag and len(a.children) == len(b.children) and all(
        shapes_equal(x, y) for x, y in zip(a.children, b.children)
    )


class TestCodecProperties:
    @given(random_trees())
    @settings(max_examples=30, deadline=None)
    def test_fixed_and_varint_round_trip_everything(self, root):
        for factory in (
            XissIntervalScheme,
            Prefix2Scheme,
            lambda: PrimeScheme(reserved_primes=0, power2_leaves=False),
        ):
            scheme = factory().label_tree(root)
            fixed = FixedWidthCodec.for_scheme(scheme)
            varint = VarintCodec.for_scheme(scheme)
            originals = [scheme.label_of(n) for n in scheme.labeled_nodes()]
            assert fixed.decode_column(fixed.encode_column(scheme)) == originals
            assert varint.decode_column(varint.encode_column(scheme)) == originals

    @given(st.lists(st.integers(0, 2**64), min_size=1, max_size=8))
    def test_varint_round_trips_arbitrary_ints(self, values):
        codec = VarintCodec("dewey")
        label = tuple(values)
        decoded, _offset = codec.decode(codec.encode(label))
        assert decoded == label


class TestJoinProperties:
    @given(random_trees(), st.integers(2, 4), st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_merge_joins_agree_with_nested_loop(self, root, a_step, d_step):
        nodes = list(root.iter_preorder())
        ancestors = nodes[::a_step]
        descendants = nodes[::d_step]

        interval = XissIntervalScheme().label_tree(root)
        baseline = sorted(
            (id(a), id(d)) for a, d in nested_loop_join(interval, ancestors, descendants)
        )
        stacked = sorted(
            (id(a), id(d)) for a, d in stack_tree_join(interval, ancestors, descendants)
        )
        assert stacked == baseline

        prime = PrimeScheme(reserved_primes=0, power2_leaves=False).label_tree(root)
        merged = sorted(
            (id(a), id(d)) for a, d in prime_merge_join(prime, ancestors, descendants)
        )
        assert merged == baseline


class TestReconstructionProperties:
    @given(random_trees())
    @settings(max_examples=30, deadline=None)
    def test_every_family_round_trips(self, root):
        prime = PrimeScheme(reserved_primes=0, power2_leaves=False).label_tree(root)
        labels = [(n.tag, prime.label_of(n)) for n in root.iter_preorder()]
        assert shapes_equal(reconstruct_from_prime(labels), root)

        interval = XissIntervalScheme().label_tree(root)
        labels = [(n.tag, interval.label_of(n)) for n in root.iter_preorder()]
        assert shapes_equal(reconstruct_from_intervals(labels), root)

        prefix = Prefix2Scheme().label_tree(root)
        labels = [(n.tag, prefix.label_of(n)) for n in root.iter_preorder()]
        assert shapes_equal(reconstruct_from_prefix(labels), root)


class TestStreamingProperties:
    @given(random_trees())
    @settings(max_examples=30, deadline=None)
    def test_streaming_prime_equals_tree_labeling(self, root):
        from repro.xmlkit.serialize import serialize
        from repro.xmlkit.streaming import stream_labels

        text = serialize(root)
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=False).label_tree(root)
        streamed = list(stream_labels(text, "prime"))
        nodes = list(root.iter_preorder())
        assert len(streamed) == len(nodes)
        for record, node in zip(streamed, nodes):
            assert record.label == scheme.label_of(node)
            assert record.depth == node.depth

    @given(random_trees())
    @settings(max_examples=30, deadline=None)
    def test_streaming_dewey_equals_tree_labeling(self, root):
        from repro.labeling.dewey import DeweyScheme
        from repro.xmlkit.serialize import serialize
        from repro.xmlkit.streaming import stream_labels

        text = serialize(root)
        scheme = DeweyScheme().label_tree(root)
        for record, node in zip(stream_labels(text, "dewey"), root.iter_preorder()):
            assert record.label == scheme.label_of(node)


class TestTokenizerFuzz:
    """The parser must never raise anything but XmlSyntaxError."""

    @given(st.text(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse_document(text)
        except XmlSyntaxError:
            pass  # rejection is the expected outcome for junk

    @given(st.text(alphabet="<>&;/=\"'ab \n![]-", max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_markup_shaped_junk_never_crashes(self, text):
        try:
            parse_document(text)
        except XmlSyntaxError:
            pass

    @given(random_trees(max_nodes=15))
    @settings(max_examples=40, deadline=None)
    def test_valid_documents_always_parse(self, root):
        from repro.xmlkit.serialize import serialize

        parse_document(serialize(root))
