"""Unit tests for the label codecs (fixed-width and varint)."""

import pytest

from repro.errors import LabelingError
from repro.labeling.codec import FixedWidthCodec, VarintCodec, ints_to_label, label_to_ints
from repro.labeling.dewey import DeweyScheme
from repro.labeling.interval import (
    FloatIntervalScheme,
    OrderSizeLabel,
    StartEndIntervalScheme,
    StartEndLabel,
    XissIntervalScheme,
)
from repro.labeling.prefix import Bits, Prefix2Scheme
from repro.labeling.prime import PrimeLabel, PrimeScheme

ALL_SCHEMES = [
    XissIntervalScheme,
    StartEndIntervalScheme,
    Prefix2Scheme,
    DeweyScheme,
    lambda: PrimeScheme(reserved_primes=0, power2_leaves=False),
]


class TestLabelToInts:
    def test_prime(self):
        assert label_to_ints(PrimeLabel(value=30, self_label=5)) == (30, 5)

    def test_interval(self):
        assert label_to_ints(OrderSizeLabel(order=3, size=7)) == (3, 7)
        assert label_to_ints(StartEndLabel(start=1, end=12)) == (1, 12)

    def test_bits(self):
        assert label_to_ints(Bits.from_string("1101")) == (4, 13)

    def test_dewey(self):
        assert label_to_ints((1, 4, 2)) == (1, 4, 2)
        assert label_to_ints(()) == ()

    def test_fractional_interval_rejected(self):
        from fractions import Fraction

        with pytest.raises(LabelingError):
            label_to_ints(StartEndLabel(start=Fraction(3, 2), end=Fraction(2)))

    def test_unsupported_type_rejected(self):
        with pytest.raises(LabelingError):
            label_to_ints("not-a-label")

    def test_round_trip_all_kinds(self):
        for kind, label in [
            ("prime", PrimeLabel(value=30, self_label=5)),
            ("order-size", OrderSizeLabel(order=3, size=7)),
            ("start-end", StartEndLabel(start=1, end=12)),
            ("bits", Bits.from_string("0101")),
            ("dewey", (2, 3)),
        ]:
            assert ints_to_label(kind, label_to_ints(label)) == label

    def test_unknown_kind_rejected(self):
        with pytest.raises(LabelingError):
            ints_to_label("mystery", (1, 2))

    def test_bare_int_labels(self):
        assert label_to_ints(42) == (42,)
        assert ints_to_label("int", (42,)) == 42

    def test_bottomup_scheme_round_trips(self, paper_tree):
        from repro.labeling.prime import BottomUpPrimeScheme

        scheme = BottomUpPrimeScheme().label_tree(paper_tree)
        codec = VarintCodec.for_scheme(scheme)
        column = codec.encode_column(scheme)
        assert codec.decode_column(column) == [
            scheme.label_of(n) for n in scheme.labeled_nodes()
        ]


class TestFixedWidthCodec:
    @pytest.mark.parametrize("factory", ALL_SCHEMES)
    def test_round_trips_whole_document(self, factory, any_tree):
        scheme = factory().label_tree(any_tree)
        codec = FixedWidthCodec.for_scheme(scheme)
        for node in any_tree.iter_preorder():
            label = scheme.label_of(node)
            assert codec.decode(codec.encode(label)) == label

    def test_record_size_fixed(self, paper_tree):
        scheme = PrimeScheme().label_tree(paper_tree)
        codec = FixedWidthCodec.for_scheme(scheme)
        sizes = {
            len(codec.encode(scheme.label_of(node)))
            for node in paper_tree.iter_preorder()
        }
        assert sizes == {codec.record_bytes}

    def test_column_round_trip(self, paper_tree):
        scheme = XissIntervalScheme().label_tree(paper_tree)
        codec = FixedWidthCodec.for_scheme(scheme)
        column = codec.encode_column(scheme)
        labels = codec.decode_column(column)
        assert labels == [scheme.label_of(n) for n in scheme.labeled_nodes()]

    def test_oversized_field_rejected(self):
        codec = FixedWidthCodec("prime", 2, 1)
        with pytest.raises(LabelingError):
            codec.encode(PrimeLabel(value=70000, self_label=7))

    def test_bad_blob_length_rejected(self):
        codec = FixedWidthCodec("prime", 2, 2)
        with pytest.raises(LabelingError):
            codec.decode(b"abc")

    def test_bad_column_length_rejected(self):
        codec = FixedWidthCodec("prime", 2, 2)
        with pytest.raises(LabelingError):
            codec.decode_column(b"abcde")

    def test_dewey_padding_unambiguous(self, paper_tree):
        scheme = DeweyScheme().label_tree(paper_tree)
        codec = FixedWidthCodec.for_scheme(scheme)
        root_label = scheme.label_of(paper_tree)
        assert codec.decode(codec.encode(root_label)) == ()

    def test_empty_scheme_rejected(self):
        with pytest.raises(LabelingError):
            FixedWidthCodec.for_scheme(PrimeScheme())

    def test_bad_construction(self):
        with pytest.raises(LabelingError):
            FixedWidthCodec("prime", 0, 2)


class TestVarintCodec:
    @pytest.mark.parametrize("factory", ALL_SCHEMES)
    def test_round_trips_whole_document(self, factory, any_tree):
        scheme = factory().label_tree(any_tree)
        codec = VarintCodec.for_scheme(scheme)
        column = codec.encode_column(scheme)
        labels = codec.decode_column(column)
        assert labels == [scheme.label_of(n) for n in scheme.labeled_nodes()]

    def test_small_values_one_byte(self):
        codec = VarintCodec("dewey")
        assert len(codec.encode((1,))) == 2  # count byte + one value byte

    def test_multibyte_varint(self):
        codec = VarintCodec("prime")
        label = PrimeLabel(value=2**40, self_label=2**40)
        decoded, _offset = codec.decode(codec.encode(label))
        assert decoded == label

    def test_truncated_blob_rejected(self):
        codec = VarintCodec("prime")
        blob = codec.encode(PrimeLabel(value=300, self_label=300))
        with pytest.raises(LabelingError):
            codec.decode(blob[:-1])

    def test_varint_beats_fixed_on_skewed_labels(self):
        """One huge label forces fixed-width to pad everything."""
        from repro.xmlkit.builder import element
        from repro.datasets.random_tree import chain_tree

        tree = chain_tree(20)
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=False).label_tree(tree)
        fixed = FixedWidthCodec.for_scheme(scheme)
        varint = VarintCodec.for_scheme(scheme)
        assert len(varint.encode_column(scheme)) < len(fixed.encode_column(scheme))
