"""Unit tests for the label codecs (fixed-width and varint)."""

import random

import pytest

from repro.errors import LabelingError
from repro.labeling.codec import (
    MAX_VARINT_FIELD_BYTES,
    FixedWidthCodec,
    VarintCodec,
    ints_to_label,
    label_to_ints,
    read_uvarint,
    write_uvarint,
)
from repro.labeling.dewey import DeweyScheme
from repro.labeling.interval import (
    FloatIntervalScheme,
    OrderSizeLabel,
    StartEndIntervalScheme,
    StartEndLabel,
    XissIntervalScheme,
)
from repro.labeling.prefix import Bits, Prefix2Scheme
from repro.labeling.prime import PrimeLabel, PrimeScheme

ALL_SCHEMES = [
    XissIntervalScheme,
    StartEndIntervalScheme,
    Prefix2Scheme,
    DeweyScheme,
    lambda: PrimeScheme(reserved_primes=0, power2_leaves=False),
]


class TestLabelToInts:
    def test_prime(self):
        assert label_to_ints(PrimeLabel(value=30, self_label=5)) == (30, 5)

    def test_interval(self):
        assert label_to_ints(OrderSizeLabel(order=3, size=7)) == (3, 7)
        assert label_to_ints(StartEndLabel(start=1, end=12)) == (1, 12)

    def test_bits(self):
        assert label_to_ints(Bits.from_string("1101")) == (4, 13)

    def test_dewey(self):
        assert label_to_ints((1, 4, 2)) == (1, 4, 2)
        assert label_to_ints(()) == ()

    def test_fractional_interval_rejected(self):
        from fractions import Fraction

        with pytest.raises(LabelingError):
            label_to_ints(StartEndLabel(start=Fraction(3, 2), end=Fraction(2)))

    def test_unsupported_type_rejected(self):
        with pytest.raises(LabelingError):
            label_to_ints("not-a-label")

    def test_round_trip_all_kinds(self):
        for kind, label in [
            ("prime", PrimeLabel(value=30, self_label=5)),
            ("order-size", OrderSizeLabel(order=3, size=7)),
            ("start-end", StartEndLabel(start=1, end=12)),
            ("bits", Bits.from_string("0101")),
            ("dewey", (2, 3)),
        ]:
            assert ints_to_label(kind, label_to_ints(label)) == label

    def test_unknown_kind_rejected(self):
        with pytest.raises(LabelingError):
            ints_to_label("mystery", (1, 2))

    def test_bare_int_labels(self):
        assert label_to_ints(42) == (42,)
        assert ints_to_label("int", (42,)) == 42

    def test_bottomup_scheme_round_trips(self, paper_tree):
        from repro.labeling.prime import BottomUpPrimeScheme

        scheme = BottomUpPrimeScheme().label_tree(paper_tree)
        codec = VarintCodec.for_scheme(scheme)
        column = codec.encode_column(scheme)
        assert codec.decode_column(column) == [
            scheme.label_of(n) for n in scheme.labeled_nodes()
        ]


class TestFixedWidthCodec:
    @pytest.mark.parametrize("factory", ALL_SCHEMES)
    def test_round_trips_whole_document(self, factory, any_tree):
        scheme = factory().label_tree(any_tree)
        codec = FixedWidthCodec.for_scheme(scheme)
        for node in any_tree.iter_preorder():
            label = scheme.label_of(node)
            assert codec.decode(codec.encode(label)) == label

    def test_record_size_fixed(self, paper_tree):
        scheme = PrimeScheme().label_tree(paper_tree)
        codec = FixedWidthCodec.for_scheme(scheme)
        sizes = {
            len(codec.encode(scheme.label_of(node)))
            for node in paper_tree.iter_preorder()
        }
        assert sizes == {codec.record_bytes}

    def test_column_round_trip(self, paper_tree):
        scheme = XissIntervalScheme().label_tree(paper_tree)
        codec = FixedWidthCodec.for_scheme(scheme)
        column = codec.encode_column(scheme)
        labels = codec.decode_column(column)
        assert labels == [scheme.label_of(n) for n in scheme.labeled_nodes()]

    def test_oversized_field_rejected(self):
        codec = FixedWidthCodec("prime", 2, 1)
        with pytest.raises(LabelingError):
            codec.encode(PrimeLabel(value=70000, self_label=7))

    def test_bad_blob_length_rejected(self):
        codec = FixedWidthCodec("prime", 2, 2)
        with pytest.raises(LabelingError):
            codec.decode(b"abc")

    def test_bad_column_length_rejected(self):
        codec = FixedWidthCodec("prime", 2, 2)
        with pytest.raises(LabelingError):
            codec.decode_column(b"abcde")

    def test_dewey_padding_unambiguous(self, paper_tree):
        scheme = DeweyScheme().label_tree(paper_tree)
        codec = FixedWidthCodec.for_scheme(scheme)
        root_label = scheme.label_of(paper_tree)
        assert codec.decode(codec.encode(root_label)) == ()

    def test_empty_scheme_rejected(self):
        with pytest.raises(LabelingError):
            FixedWidthCodec.for_scheme(PrimeScheme())

    def test_bad_construction(self):
        with pytest.raises(LabelingError):
            FixedWidthCodec("prime", 0, 2)


class TestVarintCodec:
    @pytest.mark.parametrize("factory", ALL_SCHEMES)
    def test_round_trips_whole_document(self, factory, any_tree):
        scheme = factory().label_tree(any_tree)
        codec = VarintCodec.for_scheme(scheme)
        column = codec.encode_column(scheme)
        labels = codec.decode_column(column)
        assert labels == [scheme.label_of(n) for n in scheme.labeled_nodes()]

    def test_small_values_one_byte(self):
        codec = VarintCodec("dewey")
        assert len(codec.encode((1,))) == 2  # count byte + one value byte

    def test_multibyte_varint(self):
        codec = VarintCodec("prime")
        label = PrimeLabel(value=2**40, self_label=2**40)
        decoded, _offset = codec.decode(codec.encode(label))
        assert decoded == label

    def test_truncated_blob_rejected(self):
        codec = VarintCodec("prime")
        blob = codec.encode(PrimeLabel(value=300, self_label=300))
        with pytest.raises(LabelingError):
            codec.decode(blob[:-1])

    def test_varint_beats_fixed_on_skewed_labels(self):
        """One huge label forces fixed-width to pad everything."""
        from repro.xmlkit.builder import element
        from repro.datasets.random_tree import chain_tree

        tree = chain_tree(20)
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=False).label_tree(tree)
        fixed = FixedWidthCodec.for_scheme(scheme)
        varint = VarintCodec.for_scheme(scheme)
        assert len(varint.encode_column(scheme)) < len(fixed.encode_column(scheme))


def _random_label(kind: str, rng: random.Random):
    """One random label of ``kind`` spanning 1-bit to ~200-bit fields."""

    def value() -> int:
        return rng.getrandbits(rng.randint(1, 200))

    if kind == "prime":
        # PrimeLabel enforces self_label | value, as divisibility is the
        # whole point of the scheme.
        self_label = value() or 1
        return PrimeLabel(value=self_label * value(), self_label=self_label)
    if kind == "order-size":
        return OrderSizeLabel(order=value(), size=value())
    if kind == "start-end":
        start = value()
        return StartEndLabel(start=start, end=start + value())
    if kind == "bits":
        length = rng.randint(0, 200)
        return Bits(rng.getrandbits(length) if length else 0, length)
    if kind == "dewey":
        return tuple(1 + value() for _ in range(rng.randint(0, 6)))
    raise AssertionError(kind)


class TestRandomizedRoundTrips:
    """Property tests: encode∘decode is the identity for every label kind,
    under both codecs, across randomized magnitudes."""

    KINDS = ("prime", "order-size", "start-end", "bits", "dewey")

    @pytest.mark.parametrize("kind", KINDS)
    def test_varint_round_trip(self, kind):
        rng = random.Random(20240 + self.KINDS.index(kind))
        codec = VarintCodec(kind)
        for _ in range(200):
            label = _random_label(kind, rng)
            decoded, end = codec.decode(codec.encode(label))
            assert decoded == label
            assert end == len(codec.encode(label))

    @pytest.mark.parametrize("kind", KINDS)
    def test_fixed_round_trip(self, kind):
        rng = random.Random(30240 + self.KINDS.index(kind))
        for _ in range(100):
            labels = [_random_label(kind, rng) for _ in range(rng.randint(1, 8))]
            if kind == "dewey":
                # Zero-padding is how FixedWidthCodec pads short Dewey
                # tuples, so ordinals are 1-based by construction.
                assert all(all(part > 0 for part in label) for label in labels)
            field_count = max(1, max(len(label_to_ints(l)) for l in labels))
            widest = max(
                (part for l in labels for part in label_to_ints(l)), default=0
            )
            codec = FixedWidthCodec(
                kind, field_count, max(1, (widest.bit_length() + 7) // 8)
            )
            for label in labels:
                assert codec.decode(codec.encode(label)) == label

    @pytest.mark.parametrize("kind", KINDS)
    def test_varint_column_round_trip(self, kind):
        rng = random.Random(40240 + self.KINDS.index(kind))
        codec = VarintCodec(kind)
        labels = [_random_label(kind, rng) for _ in range(50)]
        column = b"".join(codec.encode(label) for label in labels)
        assert codec.decode_column(column) == labels

    @pytest.mark.parametrize("kind", KINDS)
    def test_every_truncation_rejected(self, kind):
        """No proper prefix of an encoded label decodes: the field count
        demands missing fields and a cut varint's last byte still has its
        continuation bit set, so every cut surfaces as truncation."""
        rng = random.Random(50240 + self.KINDS.index(kind))
        codec = VarintCodec(kind)
        for _ in range(20):
            blob = codec.encode(_random_label(kind, rng))
            for cut in range(len(blob)):
                with pytest.raises(LabelingError):
                    codec.decode(blob[:cut])


class TestVarintFieldBound:
    """The anti-flood cap of read_uvarint/write_uvarint (bugfix: a crafted
    run of 0x80 continuation bytes must fail fast, not allocate)."""

    def test_continuation_flood_rejected(self):
        flood = b"\x80" * (MAX_VARINT_FIELD_BYTES * 8 // 7 + 2)
        with pytest.raises(LabelingError, match="bound"):
            read_uvarint(flood, 0)

    def test_flood_inside_a_label_rejected(self):
        codec = VarintCodec("prime")
        blob = b"\x02" + b"\x80" * (2 * MAX_VARINT_FIELD_BYTES)
        with pytest.raises(LabelingError):
            codec.decode(blob)

    def test_oversized_field_count_rejected(self):
        """A record claiming more fields than bytes remain is corruption."""
        codec = VarintCodec("dewey")
        out = []
        write_uvarint(10_000, out)
        with pytest.raises(LabelingError, match="fields"):
            codec.decode(bytes(out) + b"\x01\x01")

    def test_write_side_cap_matches_read_side(self):
        too_big = 1 << (MAX_VARINT_FIELD_BYTES * 8 + 1)
        with pytest.raises(LabelingError):
            write_uvarint(too_big, [])

    def test_negative_rejected(self):
        with pytest.raises(LabelingError):
            write_uvarint(-1, [])

    def test_large_values_round_trip(self):
        # Far past any real label but far below the cap: the bound must
        # not bite legitimate multi-kilobit prime products.
        value = (1 << 5000) - 3
        out = []
        write_uvarint(value, out)
        decoded, end = read_uvarint(bytes(out), 0)
        assert decoded == value and end == len(out)
