"""Unit tests for repro.primes.gen.PrimeGenerator."""

import pytest

from repro.primes.gen import PrimeGenerator
from repro.primes.primality import is_prime
from repro.primes.sieve import primes_first_n


class TestGeneralPool:
    def test_ascending_unique_primes(self):
        generator = PrimeGenerator()
        issued = [generator.get_prime() for _ in range(100)]
        assert issued == primes_first_n(100)

    def test_never_repeats(self):
        generator = PrimeGenerator()
        issued = {generator.get_prime() for _ in range(500)}
        assert len(issued) == 500

    def test_extends_beyond_bootstrap_cache(self):
        generator = PrimeGenerator()
        issued = [generator.get_prime() for _ in range(3000)]
        assert issued == primes_first_n(3000)
        assert all(is_prime(p) for p in issued[-10:])

    def test_iter_primes(self):
        generator = PrimeGenerator()
        iterator = generator.iter_primes()
        assert [next(iterator) for _ in range(5)] == [2, 3, 5, 7, 11]


class TestReservedPool:
    def test_reserved_come_first_and_smallest(self):
        generator = PrimeGenerator(reserved=5)
        reserved = [generator.get_reserved_prime() for _ in range(5)]
        assert reserved == [2, 3, 5, 7, 11]

    def test_general_pool_skips_reserved(self):
        generator = PrimeGenerator(reserved=5)
        assert generator.get_prime() == 13

    def test_exhausted_pool_falls_back(self):
        generator = PrimeGenerator(reserved=2)
        assert generator.get_reserved_prime() == 2
        assert generator.get_reserved_prime() == 3
        assert generator.get_reserved_prime() == 5  # fallback to general

    def test_no_reservation_falls_through(self):
        generator = PrimeGenerator()
        assert generator.get_reserved_prime() == 2

    def test_reserved_remaining(self):
        generator = PrimeGenerator(reserved=3)
        assert generator.reserved_remaining == 3
        generator.get_reserved_prime()
        assert generator.reserved_remaining == 2

    def test_negative_reserved_rejected(self):
        with pytest.raises(ValueError):
            PrimeGenerator(reserved=-1)


class TestAccounting:
    def test_issued_counts_both_pools(self):
        generator = PrimeGenerator(reserved=2)
        generator.get_reserved_prime()
        generator.get_prime()
        assert generator.issued == 2

    def test_largest_issued(self):
        generator = PrimeGenerator(reserved=2)
        assert generator.largest_issued == 0
        generator.get_reserved_prime()  # 2
        generator.get_prime()  # 5
        assert generator.largest_issued == 5

    def test_determinism(self):
        a = PrimeGenerator(reserved=8)
        b = PrimeGenerator(reserved=8)
        sequence_a = [a.get_prime() for _ in range(50)]
        sequence_b = [b.get_prime() for _ in range(50)]
        assert sequence_a == sequence_b


class TestPower2:
    @pytest.mark.parametrize("n, expected", [(1, 2), (2, 4), (3, 8), (10, 1024)])
    def test_values(self, n, expected):
        assert PrimeGenerator.get_power2(n) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PrimeGenerator.get_power2(0)
