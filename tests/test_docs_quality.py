"""Meta-tests: documentation coverage and public-API hygiene.

Deliverable (e) requires doc comments on every public item; these tests
make that a regression-checked property rather than a hope.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def walk_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue  # executable stub, not API surface
        modules.append(importlib.import_module(info.name))
    return modules


ALL_MODULES = walk_modules()


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_every_module_has_a_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_every_public_symbol_documented(module):
    undocumented = []
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{module.__name__}: undocumented {undocumented}"


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_methods_documented(module):
    undocumented = []
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if not inspect.isclass(item):
            continue
        for method_name, method in inspect.getmembers(item, inspect.isfunction):
            if method_name.startswith("_"):
                continue
            if method.__qualname__.split(".")[0] != item.__name__:
                continue  # inherited from elsewhere; documented there
            if method.__doc__ and method.__doc__.strip():
                continue
            # overrides inherit the base method's documented contract
            inherited_doc = any(
                getattr(base, method_name, None) is not None
                and getattr(getattr(base, method_name), "__doc__", None)
                for base in item.__mro__[1:]
            )
            if not inherited_doc:
                undocumented.append(f"{item.__name__}.{method_name}")
    assert not undocumented, f"{module.__name__}: undocumented {undocumented}"


def test_package_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_version_is_semver_like():
    major, minor, patch = repro.__version__.split(".")
    assert all(part.isdigit() for part in (major, minor, patch))