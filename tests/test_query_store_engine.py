"""Unit + integration tests for the label store and query engine."""

import pytest

from repro.errors import QueryEvaluationError
from repro.labeling.prefix import Bits
from repro.query.engine import QueryEngine
from repro.query.store import LabelStore, check_prefix
from repro.xmlkit.builder import element
from repro.xmlkit.parser import parse_document

SCHEMES = ["interval", "prime", "prefix-2"]

DOC_A = """
<play>
  <title/>
  <act><title/><scene><speech><line/><line/></speech></scene></act>
  <act><title/><scene><speech><line/></speech><speech><line/></speech></scene></act>
  <act><title/><scene><speech><line/><line/><line/></speech></scene></act>
</play>
"""

DOC_B = """
<play>
  <title/>
  <act><scene><speech><line/></speech></scene></act>
  <act><scene><speech><line/></speech><speech><line/><line/></speech></scene></act>
</play>
"""


@pytest.fixture(params=SCHEMES)
def engine(request):
    documents = [parse_document(DOC_A), parse_document(DOC_B)]
    return QueryEngine(LabelStore.build(documents, scheme=request.param))


class TestStoreBuild:
    def test_row_count_matches_nodes(self):
        documents = [parse_document(DOC_A), parse_document(DOC_B)]
        store = LabelStore.build(documents, scheme="interval")
        expected = sum(d.stats().node_count for d in documents)
        assert len(store) == expected

    def test_unknown_scheme_rejected(self):
        with pytest.raises(QueryEvaluationError):
            LabelStore.build([parse_document(DOC_A)], scheme="dewey")

    def test_empty_collection_rejected(self):
        with pytest.raises(QueryEvaluationError):
            LabelStore.build([], scheme="prime")

    def test_rows_with_tag_index(self):
        store = LabelStore.build([parse_document(DOC_A)], scheme="prime")
        assert len(store.rows_with_tag(0, "act")) == 3
        assert store.rows_with_tag(0, "nothing") == []
        assert store.rows_with_tag(5, "act") == []

    def test_check_prefix_udf(self):
        assert check_prefix(Bits.from_string("10"), Bits.from_string("100"))
        assert not check_prefix(Bits.from_string("10"), Bits.from_string("10"))
        assert not check_prefix(Bits.from_string("11"), Bits.from_string("100"))


class TestBasicQueries:
    def test_descendant_count(self, engine):
        # DOC_A holds 7 lines (2 + 1 + 1 + 3), DOC_B holds 4 (1 + 1 + 2).
        assert engine.count("/play//line") == 11

    def test_child_step(self, engine):
        assert engine.count("/play/act") == 5
        assert engine.count("/play/line") == 0  # lines are not direct children

    def test_first_step_matches_any_depth(self, engine):
        assert engine.count("/act") == 5
        assert engine.count("/speech") == 7

    def test_positional_first_step_per_document(self, engine):
        rows = engine.evaluate("/act[3]")
        assert len(rows) == 1  # only DOC_A has a third act

    def test_positional_inner_step_per_context(self, engine):
        # each act's 1st speech: acts with >= 1 speech -> 5 results
        assert engine.count("/play//act//speech[1]") == 5

    def test_results_sorted_and_unique(self, engine):
        rows = engine.evaluate("/play//line")
        ids = [row.element_id for row in rows]
        assert len(set(ids)) == len(ids)
        keys = [(row.doc_id, engine.store.ops.order_key(row)) for row in rows]
        assert keys == sorted(keys)

    def test_query_cannot_start_with_axis(self, engine):
        with pytest.raises(QueryEvaluationError):
            engine.evaluate("/Following::act")


class TestOrderAxes:
    def test_following_plain(self, engine):
        # acts following each act[1]: DOC_A has 2, DOC_B has 1
        assert engine.count("/play//act[1]/Following::act") == 3

    def test_following_expanded_reaches_inside(self, engine):
        # //Following:: from the last act still finds lines *inside* it
        # (descendant-or-self expansion), so the count is non-zero.
        assert engine.count("/act[3]//Following::line") > 0

    def test_preceding_expanded(self, engine):
        count = engine.count("/speech[2]//Preceding::line")
        assert count > 0

    def test_following_sibling_expanded(self, engine):
        # speeches that follow a sibling speech somewhere in an act's subtree
        assert engine.count("/act//Following-Sibling::speech") == 2

    def test_preceding_sibling_plain(self, engine):
        # each play's 2nd speech opens its scene, so no preceding siblings...
        assert engine.count("/play//speech[2]/Preceding-Sibling::speech") == 0
        # ...but each play's 3rd speech has exactly one.
        assert engine.count("/play//speech[3]/Preceding-Sibling::speech") == 2

    def test_all_schemes_agree(self):
        documents = [parse_document(DOC_A), parse_document(DOC_B)]
        queries = [
            "/play//act",
            "/play//act[2]//line",
            "/act[1]//Following::speech",
            "/speech[3]//Preceding::line",
            "/act//Following-Sibling::act[1]",
            "/play//scene//speech[2]",
        ]
        counts = {}
        for scheme in SCHEMES:
            engine = QueryEngine(LabelStore.build(documents, scheme=scheme))
            counts[scheme] = [engine.count(q) for q in queries]
        assert counts["interval"] == counts["prime"] == counts["prefix-2"]


class TestAgainstTreeTruth:
    """The engine (labels only) must agree with direct tree evaluation."""

    def test_descendants_match_tree_walk(self):
        documents = [parse_document(DOC_A)]
        engine = QueryEngine(LabelStore.build(documents, scheme="prime"))
        rows = engine.evaluate("/play//speech")
        from_tree = documents[0].find_by_tag("speech")
        assert {id(r.node) for r in rows} == {id(n) for n in from_tree}

    def test_following_matches_document_order_walk(self):
        document = parse_document(DOC_A)
        engine = QueryEngine(LabelStore.build([document], scheme="prime"))
        act2 = document.find_by_tag("act")[1]
        rows = engine.evaluate("/act[2]/Following::speech")
        preorder = list(document.iter_preorder())
        position = {id(n): i for i, n in enumerate(preorder)}
        expected = {
            id(n)
            for n in document.find_by_tag("speech")
            if position[id(n)] > position[id(act2)] and not act2.is_ancestor_of(n)
        }
        assert {id(r.node) for r in rows} == expected


class TestEngineMisc:
    def test_accepts_parsed_query(self, engine):
        from repro.query.xpath import parse_query

        assert engine.count(parse_query("/play//act")) == 5

    def test_doc_ids_filter_restricts_evaluation(self, engine):
        everywhere = engine.count("/play//act")
        only_first = len(engine.evaluate("/play//act", doc_ids={0}))
        only_second = len(engine.evaluate("/play//act", doc_ids={1}))
        assert only_first + only_second == everywhere
        assert len(engine.evaluate("/play//act", doc_ids=set())) == 0

    def test_empty_steps_rejected(self, engine):
        from repro.query.ast import Query

        with pytest.raises(QueryEvaluationError):
            engine.evaluate(Query(steps=()))
