"""Tests for the LabelingScheme protocol itself and cross-scheme agreement."""

import pytest

from repro.errors import LabelingError
from repro.labeling.base import Relationship
from repro.labeling.dewey import DeweyScheme
from repro.labeling.interval import StartEndIntervalScheme, XissIntervalScheme
from repro.labeling.prefix import Prefix1Scheme, Prefix2Scheme
from repro.labeling.prime import BottomUpPrimeScheme, PrimeScheme
from repro.xmlkit.builder import element

ALL_SCHEMES = [
    XissIntervalScheme,
    StartEndIntervalScheme,
    Prefix1Scheme,
    Prefix2Scheme,
    DeweyScheme,
    BottomUpPrimeScheme,
    lambda: PrimeScheme(reserved_primes=0, power2_leaves=False),
    lambda: PrimeScheme(reserved_primes=16, power2_leaves=True),
]

SCHEME_IDS = [
    "xiss", "startend", "prefix1", "prefix2", "dewey",
    "bottomup", "prime-orig", "prime-opt",
]


@pytest.fixture(params=ALL_SCHEMES, ids=SCHEME_IDS)
def scheme_factory(request):
    return request.param


class TestProtocol:
    def test_label_of_before_labeling_raises(self, scheme_factory):
        scheme = scheme_factory()
        with pytest.raises(LabelingError):
            scheme.label_of(element("x"))

    def test_max_label_bits_before_labeling_raises(self, scheme_factory):
        with pytest.raises(LabelingError):
            scheme_factory().max_label_bits()

    def test_root_property_before_labeling_raises(self, scheme_factory):
        with pytest.raises(LabelingError):
            _ = scheme_factory().root

    def test_every_node_labeled(self, scheme_factory, any_tree):
        scheme = scheme_factory().label_tree(any_tree)
        for node in any_tree.iter_preorder():
            scheme.label_of(node)  # must not raise

    def test_labeled_nodes_roundtrip(self, scheme_factory, paper_tree):
        scheme = scheme_factory().label_tree(paper_tree)
        assert len(list(scheme.labeled_nodes())) == 6

    def test_total_at_least_max(self, scheme_factory, any_tree):
        scheme = scheme_factory().label_tree(any_tree)
        assert scheme.total_label_bits() >= scheme.max_label_bits()

    def test_delete_root_rejected(self, scheme_factory, paper_tree):
        scheme = scheme_factory().label_tree(paper_tree)
        with pytest.raises(LabelingError):
            scheme.delete(paper_tree)

    def test_delete_removes_subtree_labels(self, scheme_factory, paper_tree):
        scheme = scheme_factory().label_tree(paper_tree)
        a = paper_tree.children[0]
        a1 = a.children[0]
        scheme.delete(a)
        with pytest.raises(LabelingError):
            scheme.label_of(a1)


class TestRelationship:
    def test_ancestor_descendant_classification(self, scheme_factory, paper_tree):
        scheme = scheme_factory().label_tree(paper_tree)
        a = paper_tree.children[0]
        a1 = a.children[0]
        assert scheme.relationship(a, a1) == Relationship.ANCESTOR
        assert scheme.relationship(a1, a) == Relationship.DESCENDANT

    def test_unrelated(self, scheme_factory, paper_tree):
        scheme = scheme_factory().label_tree(paper_tree)
        b, c = paper_tree.children[1], paper_tree.children[2]
        assert scheme.relationship(b, c) == Relationship.UNRELATED

    def test_self(self, scheme_factory, paper_tree):
        scheme = scheme_factory().label_tree(paper_tree)
        a = paper_tree.children[0]
        assert scheme.relationship(a, a) == Relationship.SELF


class TestCrossSchemeAgreement:
    """Every scheme answers the same relationship questions identically."""

    def test_all_schemes_agree_on_all_pairs(self, any_tree):
        schemes = [factory().label_tree(any_tree) for factory in ALL_SCHEMES]
        nodes = list(any_tree.iter_preorder())
        for first in nodes[::3]:
            for second in nodes[::3]:
                answers = {s.relationship(first, second) for s in schemes}
                assert len(answers) == 1, (
                    f"schemes disagree on {first.tag} vs {second.tag}: {answers}"
                )

    def test_all_schemes_survive_leaf_insert(self, paper_tree):
        for factory in ALL_SCHEMES:
            tree = paper_tree.copy()
            scheme = factory().label_tree(tree)
            scheme.insert_leaf(tree.children[0])
            _pairs, mismatches = scheme.check_against_tree()
            assert mismatches == 0, f"{scheme.name} broken after leaf insert"

    def test_all_schemes_survive_wrap(self, paper_tree):
        for factory in ALL_SCHEMES:
            tree = paper_tree.copy()
            scheme = factory().label_tree(tree)
            scheme.insert_internal(tree, 0, 2)
            _pairs, mismatches = scheme.check_against_tree()
            assert mismatches == 0, f"{scheme.name} broken after wrap"
