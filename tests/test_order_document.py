"""Unit tests for OrderedDocument — labels + SC table kept consistent."""

import random

import pytest

from repro.errors import OrderingError
from repro.labeling.prime import PrimeScheme
from repro.order.document import OrderedDocument
from repro.xmlkit.builder import element


def small_doc():
    return element(
        "r",
        element("a", element("a1"), element("a2")),
        element("b"),
        element("c"),
    )


class TestConstruction:
    def test_orders_match_preorder(self):
        doc = OrderedDocument(small_doc())
        orders = [doc.order_of(n) for n in doc.root.iter_preorder()]
        assert orders == [0, 1, 2, 3, 4, 5]

    def test_root_order_zero_not_stored(self):
        doc = OrderedDocument(small_doc())
        assert doc.order_of(doc.root) == 0
        assert doc.sc_table.node_count == 5

    def test_check_passes(self):
        assert OrderedDocument(small_doc()).check()

    def test_rejects_power2_scheme(self):
        with pytest.raises(OrderingError):
            OrderedDocument(small_doc(), scheme=PrimeScheme(power2_leaves=True))

    def test_group_size_none_single_record(self):
        doc = OrderedDocument(small_doc(), group_size=None)
        assert len(doc.sc_table) == 1

    def test_nodes_in_order(self):
        doc = OrderedDocument(small_doc())
        tags = [n.tag for n in doc.nodes_in_order()]
        assert tags == ["r", "a", "a1", "a2", "b", "c"]


class TestOrderedInsertion:
    def test_insert_between_siblings(self):
        doc = OrderedDocument(small_doc())
        doc.insert_child(doc.root, 1, tag="x")
        assert [n.tag for n in doc.nodes_in_order()] == [
            "r", "a", "a1", "a2", "x", "b", "c",
        ]
        assert doc.check()

    def test_insert_before_and_after(self):
        doc = OrderedDocument(small_doc())
        b = doc.root.children[1]
        doc.insert_before(b, tag="pre")
        doc.insert_after(b, tag="post")
        tags = [n.tag for n in doc.root.children]
        assert tags == ["a", "pre", "b", "post", "c"]
        assert doc.check()

    def test_append_child(self):
        doc = OrderedDocument(small_doc())
        doc.append_child(doc.root, tag="z")
        assert doc.root.children[-1].tag == "z"
        assert doc.check()

    def test_insert_sibling_of_root_rejected(self):
        doc = OrderedDocument(small_doc())
        with pytest.raises(OrderingError):
            doc.insert_before(doc.root)

    def test_report_counts_new_node_and_records(self):
        doc = OrderedDocument(small_doc(), group_size=2)
        report = doc.insert_child(doc.root, 0, tag="front")
        assert report.new_node is not None
        assert report.node_relabels >= 1
        assert report.sc_records_updated >= 1
        assert report.total_cost == report.node_relabels + report.sc_records_updated

    def test_tail_insert_touches_fewer_records(self):
        front_doc = OrderedDocument(small_doc(), group_size=1)
        back_doc = OrderedDocument(small_doc(), group_size=1)
        front = front_doc.insert_child(front_doc.root, 0, tag="x")
        back = back_doc.append_child(back_doc.root, tag="x")
        assert back.sc_records_updated < front.sc_records_updated

    def test_many_random_inserts_stay_consistent(self):
        rng = random.Random(7)
        doc = OrderedDocument(small_doc(), group_size=3)
        for _ in range(30):
            parent = rng.choice(list(doc.root.iter_preorder()))
            index = rng.randint(0, len(parent.children))
            doc.insert_child(parent, index, tag=f"n{rng.randrange(100)}")
        assert doc.check()
        assert doc.sc_table.check()

    def test_residue_overflow_repair(self):
        """Repeatedly inserting at the very front forces the small-prime
        nodes' orders up to their moduli; the document must repair by
        relabeling instead of corrupting the SC table (a gap in the paper)."""
        doc = OrderedDocument(element("r", element("a"), element("b")), group_size=2)
        repaired = 0
        for _ in range(10):
            report = doc.insert_child(doc.root, 0, tag="front")
            repaired += sum(
                1 for n in report.relabeled_nodes if n is not report.new_node
            )
        assert doc.check()
        assert repaired > 0  # the gap really bites, and we really repair it


class TestDeletion:
    def test_delete_keeps_order_of_survivors(self):
        doc = OrderedDocument(small_doc())
        a = doc.root.children[0]
        doc.delete(a)
        assert [n.tag for n in doc.nodes_in_order()] == ["r", "b", "c"]
        assert doc.sc_table.check()

    def test_delete_then_insert(self):
        doc = OrderedDocument(small_doc())
        doc.delete(doc.root.children[1])
        doc.insert_child(doc.root, 1, tag="replacement")
        assert doc.check()

    def test_deletion_costs_nothing(self):
        doc = OrderedDocument(small_doc())
        report = doc.delete(doc.root.children[0])
        assert report.total_cost == 0

    def test_delete_root_rejected_with_clear_error(self):
        """Pinned behavior: deleting the root raises OrderingError up front.

        The root's self-label 1 was never registered (order 0 is implicit),
        so the old code crashed mid-loop with an opaque "self-label 1 is not
        in the SC table" after the decision to reject was already forced;
        skipping the root instead would silently turn "delete the document"
        into "delete some children", which is worse.  The table must be left
        untouched by the rejected call.
        """
        doc = OrderedDocument(small_doc())
        before = doc.sc_table.orders()
        with pytest.raises(OrderingError, match="root"):
            doc.delete(doc.root)
        assert doc.sc_table.orders() == before
        assert doc.check()

    def test_scheme_delete_purges_leaf_counter(self):
        """The Opt2 leaf counter (keyed by parent label value) must not
        leak entries for deleted parents: a stale entry would inflate a
        later parent's leaf ordinals if the value were ever reissued."""
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=True)
        root = element("r", element("a", element("x"), element("y")), element("b"))
        scheme.label_tree(root)
        victim = root.children[0]
        victim_value = scheme.label_of(victim).value
        assert victim_value in scheme._leaf_counter  # two leaves were labeled
        scheme.delete(victim)
        assert victim_value not in scheme._leaf_counter

    def test_fresh_parent_after_delete_starts_ordinals_at_one(self):
        """A parent labeled after a purge hands its first Opt2 leaf 2**1,
        not a stale 2**n resurrected from the deleted parent's entry."""
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=True)
        root = element("r", element("a", element("x"), element("y")), element("b"))
        scheme.label_tree(root)
        victim = root.children[0]
        stale_value = scheme.label_of(victim).value
        scheme.delete(victim)
        # Without the purge this would resurrect the counter at 2.
        assert scheme._leaf_counter.get(stale_value, 0) == 0


class TestCompaction:
    def test_compact_renumbers_densely(self):
        doc = OrderedDocument(small_doc(), group_size=2)
        doc.delete(doc.root.children[0])  # leaves gaps 1..3
        doc.compact()
        orders = sorted(doc.order_of(n) for n in doc.root.iter_preorder())
        assert orders == [0, 1, 2]
        assert doc.check()

    def test_compact_reduces_record_count_after_churn(self):
        doc = OrderedDocument(small_doc(), group_size=2)
        for _ in range(6):
            doc.append_child(doc.root, tag="tmp")
        for node in [n for n in doc.root.children if n.tag == "tmp"]:
            doc.delete(node)
        before = len(doc.sc_table)
        doc.compact()
        assert len(doc.sc_table) <= before
        assert doc.check()

    def test_compact_is_idempotent(self):
        doc = OrderedDocument(small_doc())
        first = doc.compact()
        second = doc.compact()
        assert first == second
        assert doc.check()
