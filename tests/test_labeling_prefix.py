"""Unit tests for the binary prefix schemes (Prefix-1, Prefix-2)."""

import pytest

from repro.labeling.prefix import (
    Bits,
    Prefix1Scheme,
    Prefix2Scheme,
    prefix1_code,
    prefix2_first_code,
    prefix2_next_code,
)
from repro.xmlkit.builder import element


class TestBits:
    def test_from_string_and_str(self):
        assert str(Bits.from_string("1101")) == "1101"
        assert str(Bits.empty()) == ""

    def test_from_string_rejects_junk(self):
        with pytest.raises(ValueError):
            Bits.from_string("10a1")

    def test_value_must_fit(self):
        with pytest.raises(ValueError):
            Bits(4, 2)
        with pytest.raises(ValueError):
            Bits(-1, 4)

    def test_leading_zeros_preserved(self):
        assert str(Bits(1, 4)) == "0001"

    def test_concat(self):
        assert str(Bits.from_string("10").concat(Bits.from_string("01"))) == "1001"

    def test_concat_with_empty(self):
        code = Bits.from_string("110")
        assert Bits.empty().concat(code) == code
        assert code.concat(Bits.empty()) == code

    def test_is_prefix_of(self):
        assert Bits.from_string("10").is_prefix_of(Bits.from_string("1011"))
        assert not Bits.from_string("11").is_prefix_of(Bits.from_string("1011"))
        assert Bits.from_string("10").is_prefix_of(Bits.from_string("10"))
        assert not Bits.from_string("1011").is_prefix_of(Bits.from_string("10"))

    def test_proper_prefix(self):
        code = Bits.from_string("10")
        assert not code.is_proper_prefix_of(code)
        assert code.is_proper_prefix_of(Bits.from_string("100"))

    def test_empty_is_prefix_of_everything(self):
        assert Bits.empty().is_prefix_of(Bits.from_string("0"))

    def test_all_ones(self):
        assert Bits.from_string("111").all_ones
        assert not Bits.from_string("110").all_ones
        assert not Bits.empty().all_ones

    def test_len(self):
        assert len(Bits.from_string("0101")) == 4


class TestPrefix1Codes:
    @pytest.mark.parametrize(
        "ordinal, expected", [(1, "0"), (2, "10"), (3, "110"), (5, "11110")]
    )
    def test_unary_codes(self, ordinal, expected):
        assert str(prefix1_code(ordinal)) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            prefix1_code(0)

    def test_codes_prefix_free(self):
        codes = [prefix1_code(i) for i in range(1, 20)]
        for a in codes:
            for b in codes:
                if a is not b:
                    assert not a.is_prefix_of(b)


class TestPrefix2Codes:
    def test_paper_sequence(self):
        """The exact sequence from the paper: 0, 10, 1100, 1101, 1110, 11110000."""
        code = prefix2_first_code()
        sequence = [str(code)]
        for _ in range(5):
            code = prefix2_next_code(code)
            sequence.append(str(code))
        assert sequence == ["0", "10", "1100", "1101", "1110", "11110000"]

    def test_lengths_grow_logarithmically(self):
        code = prefix2_first_code()
        for _ in range(200):
            code = prefix2_next_code(code)
        # After n increments the length is O(log n) doublings: 201 codes fit
        # in length 16 (codes of length 16 cover ordinals up to ~2^12).
        assert len(code) <= 16

    def test_codes_prefix_free_and_ordered(self):
        codes = []
        code = prefix2_first_code()
        for _ in range(100):
            codes.append(code)
            code = prefix2_next_code(code)
        for i, a in enumerate(codes):
            for j, b in enumerate(codes):
                if i != j:
                    assert not a.is_prefix_of(b)
                if i < j:
                    assert str(a) < str(b)  # lexicographic = sibling order


@pytest.mark.parametrize("scheme_class", [Prefix1Scheme, Prefix2Scheme])
class TestPrefixSchemes:
    def test_matches_ground_truth(self, scheme_class, any_tree):
        scheme = scheme_class().label_tree(any_tree)
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_root_label_empty(self, scheme_class, paper_tree):
        scheme = scheme_class().label_tree(paper_tree)
        assert scheme.label_of(paper_tree) == Bits.empty()

    def test_child_inherits_parent_prefix(self, scheme_class, paper_tree):
        scheme = scheme_class().label_tree(paper_tree)
        a = paper_tree.children[0]
        a1 = a.children[0]
        assert scheme.label_of(a).is_proper_prefix_of(scheme.label_of(a1))

    def test_leaf_append_relabels_one(self, scheme_class, paper_tree):
        scheme = scheme_class().label_tree(paper_tree)
        report = scheme.insert_leaf(paper_tree.children[0])
        assert report.count == 1
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_unordered_mid_insert_relabels_one(self, scheme_class, paper_tree):
        scheme = scheme_class().label_tree(paper_tree)
        report = scheme.insert_leaf(paper_tree, index=1)
        assert report.count == 1
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_wrap_relabels_subtree_only(self, scheme_class, paper_tree):
        scheme = scheme_class().label_tree(paper_tree)
        # wrap "a" (which has 2 children): new node + a + a1 + a2 = 4
        report = scheme.insert_internal(paper_tree, 0, 1)
        assert report.count == 4
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_ordered_insert_relabels_following_siblings(self, scheme_class, paper_tree):
        scheme = scheme_class().label_tree(paper_tree)
        # insert before "b": new node + b + c relabel; "a" subtree untouched
        report = scheme.insert_leaf_ordered(paper_tree, 1)
        assert report.count == 3
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_ordered_insert_at_front_relabels_everything_below_parent(
        self, scheme_class, paper_tree
    ):
        scheme = scheme_class().label_tree(paper_tree)
        report = scheme.insert_leaf_ordered(paper_tree, 0)
        # every original child subtree shifts: a,a1,a2,b,c + new = 6
        assert report.count == 6

    def test_delete_is_free(self, scheme_class, paper_tree):
        scheme = scheme_class().label_tree(paper_tree)
        assert scheme.delete(paper_tree.children[0]).count == 0
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0


class TestPrefixSizes:
    def test_prefix1_grows_linearly_with_fanout(self):
        wide = element("r", *[element("x") for _ in range(30)])
        scheme = Prefix1Scheme().label_tree(wide)
        assert scheme.max_label_bits() == 30

    def test_prefix2_grows_logarithmically_with_fanout(self):
        wide = element("r", *[element("x") for _ in range(30)])
        scheme = Prefix2Scheme().label_tree(wide)
        assert scheme.max_label_bits() <= 4 * 5  # 4*log2(30) ~ 19.6

    def test_prefix2_beats_prefix1_on_wide_trees(self):
        wide = element("r", *[element("x") for _ in range(100)])
        p1 = Prefix1Scheme().label_tree(wide).max_label_bits()
        p2 = Prefix2Scheme().label_tree(wide).max_label_bits()
        assert p2 < p1
