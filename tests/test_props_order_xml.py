"""Property-based tests for the ordered document and the XML round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.order.document import OrderedDocument
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serialize import serialize
from repro.xmlkit.tree import XmlElement


@st.composite
def random_trees(draw, max_nodes=20):
    size = draw(st.integers(1, max_nodes))
    nodes = [XmlElement("n0")]
    for index in range(1, size):
        parent = nodes[draw(st.integers(0, index - 1))]
        nodes.append(parent.append(XmlElement(f"n{index}")))
    return nodes[0]


@st.composite
def insertion_scripts(draw):
    root = draw(random_trees())
    inserts = draw(
        st.lists(st.tuples(st.integers(0, 10**6), st.integers(0, 10**6)), max_size=12)
    )
    group_size = draw(st.sampled_from([1, 2, 5, None]))
    return root, inserts, group_size


class TestOrderedDocumentProperties:
    @given(random_trees(), st.sampled_from([1, 3, 5, None]))
    @settings(max_examples=40, deadline=None)
    def test_initial_orders_match_preorder(self, root, group_size):
        document = OrderedDocument(root, group_size=group_size)
        assert document.check()
        orders = [document.order_of(n) for n in root.iter_preorder()]
        assert orders == list(range(len(orders)))

    @given(insertion_scripts())
    @settings(max_examples=30, deadline=None)
    def test_order_preserved_through_arbitrary_insertions(self, script):
        root, inserts, group_size = script
        document = OrderedDocument(root, group_size=group_size)
        for parent_selector, index_selector in inserts:
            nodes = list(root.iter_preorder())
            parent = nodes[parent_selector % len(nodes)]
            index = index_selector % (len(parent.children) + 1)
            document.insert_child(parent, index, tag="ins")
        assert document.check()
        assert document.sc_table.check()

    @given(insertion_scripts())
    @settings(max_examples=20, deadline=None)
    def test_total_cost_bounded_by_records_plus_repairs(self, script):
        root, inserts, group_size = script
        document = OrderedDocument(root, group_size=group_size)
        for parent_selector, index_selector in inserts:
            nodes = list(root.iter_preorder())
            parent = nodes[parent_selector % len(nodes)]
            index = index_selector % (len(parent.children) + 1)
            report = document.insert_child(parent, index, tag="ins")
            # cost can never exceed: every record rewritten, plus the
            # registration of the new congruence, plus (worst case) every
            # existing node repaired — a node may be charged twice when it
            # both overflows itself and descends from another overflow —
            # plus the new node itself
            bound = len(document.sc_table) + 2 * len(nodes) + 2
            assert 0 < report.total_cost <= bound

    @given(random_trees(), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_delete_keeps_relative_order(self, root, selector):
        document = OrderedDocument(root)
        descendants = list(root.iter_descendants())
        if not descendants:
            return
        document.delete(descendants[selector % len(descendants)])
        survivors = list(root.iter_preorder())
        orders = [document.order_of(n) for n in survivors]
        assert orders == sorted(orders)
        assert len(set(orders)) == len(orders)


_TAGS = st.sampled_from(["a", "b", "c", "item", "x-1", "ns:t"])
_TEXT = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd", "Zs"),
        whitelist_characters="&<>'\"",
    ),
    max_size=20,
)


@st.composite
def text_trees(draw, depth=3):
    node = XmlElement(draw(_TAGS), text=draw(_TEXT).strip())
    if depth > 0:
        for child in draw(st.lists(text_trees(depth=depth - 1), max_size=3)):
            node.append(child)
    return node


class TestXmlRoundTripProperties:
    @given(text_trees())
    @settings(max_examples=60, deadline=None)
    def test_serialize_parse_round_trip(self, tree):
        assert parse_document(serialize(tree)).structurally_equal(tree)

    @given(text_trees())
    @settings(max_examples=40, deadline=None)
    def test_double_round_trip_stable(self, tree):
        once = serialize(parse_document(serialize(tree)))
        twice = serialize(parse_document(once))
        assert once == twice
