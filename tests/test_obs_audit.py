"""The deep auditor: green on healthy documents, loud on corruption."""

import pytest

from repro.errors import AuditError
from repro.labeling.prime import PrimeScheme
from repro.obs.audit import (
    AuditReport,
    audit_any,
    audit_ordered_document,
    audit_sc_table,
    audit_scheme,
)
from repro.order.document import OrderedDocument
from repro.order.sc_table import SCTable
from repro.xmlkit.parser import parse_document

# The quickstart example's document (examples/quickstart.py).
LIBRARY = """
<library>
  <fiction>
    <book><title>Dune</title><year>1965</year></book>
    <book><title>Neuromancer</title><year>1984</year></book>
  </fiction>
  <science>
    <book><title>Cosmos</title><year>1980</year></book>
  </science>
</library>
"""


def library():
    return parse_document(LIBRARY)


class TestHealthyDocuments:
    def test_ordered_document_passes_every_invariant(self):
        report = audit_ordered_document(OrderedDocument(library()))
        assert report.ok, report.summary()
        for invariant in (
            "label.self-divides",
            "label.parent-chain",
            "label.distinct-self",
            "label.ancestor-test",
            "sc.residue-range",
            "sc.coprime",
            "sc.crt-value",
            "sc.max-prime",
            "sc.registration",
            "sc.routing",
            "order.preorder",
        ):
            assert report.checks.get(invariant, 0) > 0, f"{invariant} never ran"

    def test_survives_updates(self):
        doc = OrderedDocument(library())
        doc.insert_child(doc.root, 1, tag="poetry")
        doc.delete(doc.root.children[2])
        assert audit_ordered_document(doc).ok

    def test_opt2_scheme_passes(self):
        # Power-of-two leaf self-labels legitimately repeat across parents;
        # the auditor must not flag them as duplicate moduli.
        scheme = PrimeScheme(reserved_primes=8, power2_leaves=True)
        scheme.label_tree(library())
        report = audit_scheme(scheme)
        assert report.ok, report.summary()

    def test_audit_any_dispatches_on_type(self):
        doc = OrderedDocument(library())
        assert audit_any(doc).ok
        assert audit_any(doc.sc_table).ok
        assert audit_any(doc.scheme).ok
        with pytest.raises(TypeError):
            audit_any(object())


class TestCorruptionDetection:
    def test_wrong_sc_order_is_flagged(self):
        doc = OrderedDocument(library())
        last = list(doc.root.iter_preorder())[-1]
        # Valid residue, wrong position: order 1 collides with the front of
        # the document, so preorder monotonicity must break.
        doc.sc_table.set_order(doc.label_of(last).self_label, 1)
        report = audit_ordered_document(doc)
        assert not report.ok
        assert any(v.invariant == "order.preorder" for v in report.violations)

    def test_out_of_range_residue_is_flagged(self):
        doc = OrderedDocument(library())
        record = doc.sc_table.records[0]
        modulus = record.system.moduli[0]
        record.system._congruences[modulus] = modulus  # residue == modulus
        report = audit_sc_table(doc.sc_table)
        assert any(v.invariant == "sc.residue-range" for v in report.violations)

    def test_duplicate_prime_self_label_is_flagged(self):
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=False)
        root = library()
        scheme.label_tree(root)
        first, second = root.children[0], root.children[1]
        scheme._labels[id(second)] = scheme.label_of(first)
        report = audit_scheme(scheme)
        assert not report.ok
        assert any(
            v.invariant == "label.distinct-self" for v in report.violations
        )

    def test_orphaned_sc_entry_is_flagged(self):
        doc = OrderedDocument(library())
        doc.sc_table.register(9973, 42)  # no live node carries this prime
        report = audit_ordered_document(doc)
        assert any(v.invariant == "sc.registration" for v in report.violations)

    def test_raise_if_failed_raises_audit_error(self):
        doc = OrderedDocument(library())
        last = list(doc.root.iter_preorder())[-1]
        doc.sc_table.set_order(doc.label_of(last).self_label, 1)
        report = audit_ordered_document(doc)
        with pytest.raises(AuditError, match="order.preorder"):
            report.raise_if_failed()

    def test_clean_report_does_not_raise(self):
        audit_ordered_document(OrderedDocument(library())).raise_if_failed()


class TestReportMechanics:
    def test_merge_folds_checks_and_violations(self):
        first = AuditReport()
        first.checked("a", 2)
        first.flag("a", "broken")
        second = AuditReport()
        second.checked("a", 3)
        second.checked("b")
        first.merge(second)
        assert first.checks == {"a": 5, "b": 1}
        assert len(first.violations) == 1
        assert not first.ok

    def test_summary_lists_violations_first(self):
        report = AuditReport()
        report.checked("good", 4)
        report.flag("bad", "details", subject="node-7")
        lines = report.summary().splitlines()
        assert "violation" in lines[0]
        assert lines[1].startswith("  FAIL bad [node-7]")
        assert any(line.startswith("  ok   good") for line in lines)

    def test_empty_sc_table_audits_clean(self):
        assert audit_sc_table(SCTable(group_size=3)).ok
