"""Placement determinism, the document map, and the SHARDS.json manifest."""

import json

import pytest

from repro.errors import ShardError
from repro.shard import (
    MANIFEST_NAME,
    DocumentMap,
    HashPartitioner,
    ShardManifest,
    read_manifest,
    write_manifest,
)


def test_partitioner_is_deterministic_across_instances():
    a, b = HashPartitioner(4), HashPartitioner(4)
    assert [a.shard_of(i) for i in range(64)] == [b.shard_of(i) for i in range(64)]


def test_partitioner_spreads_small_consecutive_ids():
    # The whole point of BLAKE2b over CRC32: tiny consecutive ids (the
    # only ids the DocumentMap ever issues) must not cluster.
    for shards in (2, 4, 8):
        placed = {HashPartitioner(shards).shard_of(i) for i in range(32)}
        assert placed == set(range(shards))


def test_partitioner_rejects_zero_shards():
    with pytest.raises(ShardError):
        HashPartitioner(0)


def test_document_map_round_trips_global_and_local():
    doc_map = DocumentMap(3)
    for expected_id in range(20):
        doc_id, shard, local = doc_map.add()
        assert doc_id == expected_id
        assert doc_map.to_local(doc_id) == (shard, local)
        assert doc_map.to_global(shard, local) == doc_id
    assert doc_map.doc_count == 20
    assert sum(len(docs) for docs in doc_map.by_shard) == 20


def test_document_map_rebuilds_identically_from_count():
    original = DocumentMap(4)
    for _ in range(17):
        original.add()
    rebuilt = DocumentMap(4, doc_count=17)
    assert rebuilt.by_shard == original.by_shard


def test_document_map_rejects_unknown_ids():
    doc_map = DocumentMap(2, doc_count=3)
    with pytest.raises(ShardError):
        doc_map.to_local(3)
    with pytest.raises(ShardError):
        doc_map.to_global(2, 0)
    with pytest.raises(ShardError):
        doc_map.to_global(0, 99)


def test_manifest_round_trips(tmp_path):
    manifest = ShardManifest(
        shards=4, doc_count=9, group_size=5, strategy="scan", fsync="batch:3"
    )
    write_manifest(tmp_path, manifest)
    assert read_manifest(tmp_path) == manifest


def test_manifest_missing_raises_shard_error(tmp_path):
    with pytest.raises(ShardError, match="not a sharded collection"):
        read_manifest(tmp_path)


def test_manifest_corrupt_raises_shard_error(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text("{not json", "utf-8")
    with pytest.raises(ShardError, match="unreadable"):
        read_manifest(tmp_path)


def test_manifest_mistyped_field_raises_shard_error(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text(
        json.dumps({"shards": "two", "doc_count": 1}), "utf-8"
    )
    with pytest.raises(ShardError, match="missing or mistypes"):
        read_manifest(tmp_path)
