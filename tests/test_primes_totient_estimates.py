"""Unit tests for repro.primes.totient and repro.primes.estimates."""

import math

import pytest

from repro.primes.estimates import (
    estimated_bit_length,
    estimated_nth_prime,
    figure3_series,
    prime_count_estimate,
)
from repro.primes.sieve import primes_first_n
from repro.primes.totient import totient


class TestTotient:
    @pytest.mark.parametrize(
        "n, expected",
        [(1, 1), (2, 1), (3, 2), (4, 2), (6, 2), (9, 6), (10, 4), (12, 4), (36, 12), (97, 96)],
    )
    def test_known_values(self, n, expected):
        assert totient(n) == expected

    def test_prime_gives_n_minus_one(self):
        for p in [2, 3, 5, 7, 11, 101]:
            assert totient(p) == p - 1

    def test_multiplicative_on_coprimes(self):
        assert totient(35) == totient(5) * totient(7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            totient(0)

    def test_brute_force_agreement(self):
        for n in range(1, 200):
            brute = sum(1 for k in range(1, n + 1) if math.gcd(k, n) == 1)
            assert totient(n) == brute


class TestEstimates:
    def test_first_prime_estimate_clamped(self):
        assert estimated_nth_prime(1) == 2.0

    def test_estimate_grows(self):
        values = [estimated_nth_prime(n) for n in range(2, 100)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            estimated_nth_prime(0)

    def test_estimate_close_to_actual_bits(self):
        """The paper's claim behind Figure 3: the bit-length error is small."""
        primes = primes_first_n(10_000)
        worst = max(
            abs(primes[n - 1].bit_length() - estimated_bit_length(n))
            for n in range(2, 10_001)
        )
        assert worst <= 2.0  # within 2 bits everywhere

    def test_prime_count_estimate(self):
        # The paper's x / log2(x) underestimates pi(x) (pi(10^4) = 1229)
        # but stays within a factor of two — good enough for bit lengths.
        assert prime_count_estimate(1) == 0.0
        estimate = prime_count_estimate(10_000)
        assert 1229 / 2 <= estimate <= 1229

    def test_figure3_series_shape(self):
        series = figure3_series(100)
        assert len(series) == 100
        n, actual, estimated = series[0]
        assert (n, actual) == (1, 2)  # first prime is 2 -> 2 bits
        assert estimated == pytest.approx(1.0)

    def test_figure3_series_monotone_actual(self):
        series = figure3_series(1000)
        bits = [row[1] for row in series]
        assert all(a <= b for a, b in zip(bits, bits[1:]))
