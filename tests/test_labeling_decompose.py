"""Unit tests for tree decomposition (deep-tree optimization)."""

import pytest

from repro.datasets.random_tree import RandomTreeBuilder, chain_tree, perfect_tree
from repro.labeling.decompose import DecomposedLabeling, decompose_tree
from repro.labeling.prime import PrimeScheme


def prime_factory():
    return PrimeScheme(reserved_primes=0, power2_leaves=False)


class TestDecomposition:
    def test_shallow_tree_single_component(self, paper_tree):
        decomposition = decompose_tree(paper_tree, prime_factory, max_depth=5)
        assert decomposition.component_count == 1

    def test_chain_splits_into_components(self):
        decomposition = decompose_tree(chain_tree(10), prime_factory, max_depth=2)
        assert decomposition.component_count == 4  # ceil(10 / 3) levels of 3

    def test_bad_max_depth_rejected(self, paper_tree):
        with pytest.raises(ValueError):
            decompose_tree(paper_tree, prime_factory, max_depth=0)

    @pytest.mark.parametrize("max_depth", [1, 2, 3])
    def test_ancestor_test_matches_ground_truth(self, any_tree, max_depth):
        decomposition = decompose_tree(any_tree, prime_factory, max_depth=max_depth)
        nodes = list(any_tree.iter_preorder())
        for first in nodes:
            for second in nodes:
                if first is second:
                    continue
                assert decomposition.is_ancestor(first, second) == first.is_ancestor_of(
                    second
                ), f"{first.tag} vs {second.tag} (max_depth={max_depth})"

    def test_component_index_consistent(self):
        tree = chain_tree(7)
        decomposition = decompose_tree(tree, prime_factory, max_depth=2)
        indices = [decomposition.component_index(n) for n in tree.iter_preorder()]
        assert indices == [0, 0, 0, 1, 1, 1, 2]

    def test_local_and_global_labels_exist(self):
        tree = chain_tree(7)
        decomposition = decompose_tree(tree, prime_factory, max_depth=2)
        for node in tree.iter_preorder():
            assert decomposition.local_label(node) is not None
            assert decomposition.global_label(node) is not None


class TestDecompositionBenefit:
    def test_reduces_label_size_on_deep_trees(self):
        """The point of the optimization: deep chains get shorter labels."""
        tree = chain_tree(60)
        flat = prime_factory().label_tree(tree).max_label_bits()
        decomposed = decompose_tree(tree, prime_factory, max_depth=4).max_label_bits()
        assert decomposed < flat

    def test_no_benefit_needed_on_shallow_trees(self):
        tree = perfect_tree(2, 5)
        flat = prime_factory().label_tree(tree.copy()).max_label_bits()
        decomposed = decompose_tree(tree, prime_factory, max_depth=8).max_label_bits()
        # a single component plus a trivial global tree: roughly the same
        assert decomposed <= flat + 2

    def test_random_deep_tree(self):
        tree = RandomTreeBuilder(seed=5, max_depth=20, max_fanout=3).build(300)
        decomposition = decompose_tree(tree, prime_factory, max_depth=5)
        assert decomposition.component_count > 1
        # spot-check correctness on a sample of pairs
        nodes = list(tree.iter_preorder())[::7]
        for first in nodes:
            for second in nodes:
                if first is not second:
                    assert decomposition.is_ancestor(
                        first, second
                    ) == first.is_ancestor_of(second)
