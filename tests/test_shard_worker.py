"""The worker protocol engine, and the picklable bootstrap state.

Satellite 1: everything a worker needs to (re)start must survive the
process boundary — the :class:`WorkerConfig` itself (pickled under the
``spawn`` start method), the prime generator's issuance position, and
the SC-group snapshot payload — each with an exact round-trip proof.
The :class:`WorkerServer` tests drive the protocol engine in-process,
no child processes involved.
"""

import pickle

import pytest

from repro.durable.collection import DurableCollection
from repro.durable.faults import CrashAfterAppends
from repro.durable.recovery import shard_directory
from repro.durable.snapshot import (
    collection_fingerprint,
    read_snapshot,
    restore_collection,
    write_snapshot,
)
from repro.errors import QuerySyntaxError, ShardError
from repro.primes.gen import PrimeGenerator
from repro.query.live import LiveCollection
from repro.shard import (
    Request,
    WorkerConfig,
    WorkerServer,
    build_fault_injector,
    rehydrate_error,
)
from repro.xmlkit.parser import parse_document

DOCS = ["<r><a><b/></a><c/></r>", "<r><x/><y><z/></y></r>"]


@pytest.fixture
def worker(tmp_path):
    documents = [parse_document(xml) for xml in DOCS]
    DurableCollection.create(shard_directory(tmp_path, 0), documents).close()
    server = WorkerServer(WorkerConfig(shard_id=0, root=str(tmp_path)))
    yield server
    server.close()


# ---------------------------------------------------------------------------
# Satellite 1: picklable bootstrap state round-trips


def test_worker_config_pickle_round_trip():
    config = WorkerConfig(
        shard_id=3,
        root="/somewhere/shards",
        fsync="batch:7",
        verify=False,
        fault_spec="crash_after_appends:2",
    )
    assert pickle.loads(pickle.dumps(config)) == config


def test_prime_generator_state_pickle_round_trip():
    generator = PrimeGenerator(reserved=8)
    issued = [generator.get_reserved_prime() for _ in range(3)]
    issued += [generator.get_prime() for _ in range(10)]
    state = generator.state()
    restored = PrimeGenerator.from_state(pickle.loads(pickle.dumps(state)))
    # The restored generator continues the exact sequence — no repeats,
    # no gaps — which is what makes recovery labeling deterministic.
    assert [restored.get_prime() for _ in range(10)] == [
        generator.get_prime() for _ in range(10)
    ]
    assert restored.state() == generator.state()


def test_snapshot_state_pickle_round_trip(tmp_path):
    collection = LiveCollection([parse_document(xml) for xml in DOCS])
    collection.insert_child(collection.documents[0], 0, tag="new")
    path = tmp_path / "snap.rpsn"
    write_snapshot(collection, path, last_seq=5)
    state = read_snapshot(path)
    restored_state = pickle.loads(pickle.dumps(state))
    assert restored_state.last_seq == 5
    assert [d.generator_state for d in restored_state.documents] == [
        d.generator_state for d in state.documents
    ]
    assert [d.sc_groups for d in restored_state.documents] == [
        d.sc_groups for d in state.documents
    ]
    assert collection_fingerprint(restore_collection(restored_state)) == (
        collection_fingerprint(restore_collection(state))
    )


# ---------------------------------------------------------------------------
# The protocol engine, in-process


def test_worker_serves_pings_queries_and_mutations(worker):
    pong = worker.handle(Request(id=1, kind="ping", payload={}))
    assert pong.ok and pong.value["docs"] == 2 and pong.value["last_seq"] == 0

    rows = worker.handle(Request(id=2, kind="query", payload={"text": "//b"}))
    assert rows.ok and [(doc, tag) for doc, tag, _, _ in rows.value] == [(0, "b")]

    ack = worker.handle(
        Request(
            id=3,
            kind="apply",
            payload={
                "op": {
                    "op": "insert_child",
                    "doc": 1,
                    "parent": 0,
                    "index": 0,
                    "tag": "w",
                }
            },
        )
    )
    assert ack.ok and ack.value["last_seq"] == 1
    serialized = worker.handle(Request(id=4, kind="serialize", payload={"doc": 1}))
    assert serialized.ok and "<w" in serialized.value
    audit = worker.handle(Request(id=5, kind="audit", payload={}))
    assert audit.ok and audit.value == []


def test_worker_batch_is_one_wal_record(worker):
    ack = worker.handle(
        Request(
            id=1,
            kind="apply_batch",
            payload={
                "entries": [
                    {"kind": "insert_child", "doc": 0, "pos": 0, "index": 0,
                     "tag": "p"},
                    {"kind": "insert_child", "doc": 1, "pos": 0, "index": 0,
                     "tag": "q"},
                ]
            },
        )
    )
    # Group commit: two ops, one sequence number — the property the
    # router's single-comparison redo reconciliation rests on.
    assert ack.ok and ack.value["last_seq"] == 1 and ack.value["ops"] == 2


def test_worker_errors_ship_as_data_and_rehydrate_typed(worker):
    response = worker.handle(
        Request(id=1, kind="query", payload={"text": "//[broken"})
    )
    assert not response.ok
    error = rehydrate_error(response.error, shard=0)
    assert isinstance(error, QuerySyntaxError)
    assert "shard 0" in str(error)

    response = worker.handle(Request(id=2, kind="never-heard-of-it", payload={}))
    assert not response.ok
    error = rehydrate_error(response.error, shard=4)
    assert isinstance(error, ShardError)
    assert "shard 4" in str(error)


def test_worker_survives_a_failed_request(worker):
    bad = worker.handle(
        Request(
            id=1,
            kind="apply",
            payload={"op": {"op": "delete", "doc": 0, "node": 999}},
        )
    )
    assert not bad.ok
    # The failed op must not have consumed a sequence number or wedged
    # the collection: the next request serves normally.
    pong = worker.handle(Request(id=2, kind="ping", payload={}))
    assert pong.ok and pong.value["last_seq"] == 0


def test_fault_spec_parsing():
    assert build_fault_injector(None) is None
    assert build_fault_injector("") is None
    injector = build_fault_injector("crash_after_appends:2")
    assert isinstance(injector, CrashAfterAppends) and injector.count == 2
    with pytest.raises(ShardError, match="integer"):
        build_fault_injector("crash_after_appends:soon")
    with pytest.raises(ShardError, match="unknown"):
        build_fault_injector("meteor_strike")
