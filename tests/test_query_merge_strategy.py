"""Tests for the engine's merge-join evaluation strategy."""

import pytest

from repro.datasets.shakespeare import shakespeare_corpus
from repro.errors import QueryEvaluationError
from repro.query.engine import QueryEngine
from repro.query.store import LabelStore
from repro.xmlkit.parser import parse_document

DOC = """
<play>
  <title/>
  <act><title/><scene><speech><line/><line/></speech></scene></act>
  <act><scene><speech><line/></speech><speech><line/></speech></scene></act>
</play>
"""


@pytest.fixture(params=["interval", "prime", "prefix-2"])
def engines(request):
    documents = [parse_document(DOC)] + shakespeare_corpus(plays=2, seed=55)
    store = LabelStore.build(documents, scheme=request.param)
    return QueryEngine(store, strategy="scan"), QueryEngine(store, strategy="merge")


QUERIES = (
    "/play//line",
    "/play/act",
    "/play/act/scene/speech",
    "/act//line",
    "/PLAY//SPEECH/SPEAKER",
    "/PLAY//ACT//LINE",
    "/play//nothing",
    "/play//act[2]//line",            # positional: falls back to scan
    "/act//Following::speech",        # order axis: falls back to scan
    "/SPEECH/LINE",
)


class TestMergeEquivalence:
    def test_identical_results_across_strategies(self, engines):
        scan, merge = engines
        for query in QUERIES:
            scan_ids = [row.element_id for row in scan.evaluate(query)]
            merge_ids = [row.element_id for row in merge.evaluate(query)]
            assert sorted(scan_ids) == sorted(merge_ids), query

    def test_paper_queries_identical(self, engines):
        from repro.bench.response import PAPER_QUERIES

        scan, merge = engines
        for _name, text in PAPER_QUERIES:
            assert scan.count(text) == merge.count(text), text


class TestMergeDetails:
    def make(self, strategy):
        return QueryEngine(
            LabelStore.build([parse_document(DOC)], scheme="prime"), strategy=strategy
        )

    def test_child_depth_discrimination(self):
        merge = self.make("merge")
        assert merge.count("/play/line") == 0  # lines are deep descendants
        assert merge.count("/speech/line") == 4

    def test_text_filter_applies_in_merge(self):
        documents = [parse_document("<r><a>x</a><a>y</a><b><a>x</a></b></r>")]
        merge = QueryEngine(LabelStore.build(documents, scheme="prime"), strategy="merge")
        assert merge.count("/r//a[.='x']") == 2

    def test_bad_strategy_rejected(self):
        with pytest.raises(QueryEvaluationError):
            self.make("hash-join")

    def test_results_in_document_order(self):
        merge = self.make("merge")
        rows = merge.evaluate("/play//line")
        keys = [merge.store.ops.order_key(row) for row in rows]
        assert keys == sorted(keys)
