"""Tests for the whole-program analyzer: pass 0 plus rules R14-R17.

Three layers, mirroring ``tests/test_analysis_rules.py``:

* rule fixtures — each program rule must trigger, suppress, and stay
  quiet on the sanctioned pattern;
* pass-0 unit tests — symbol table and call graph over a synthetic
  package exercising aliased imports, ``self``-method dispatch through
  declared attribute types, and re-export chains;
* end-to-end acceptance — a deliberately injected WAL encoder/decoder
  mismatch makes the CLI exit 1 with a SARIF finding naming the opcode,
  the real tree self-lints clean for R14-R17, and the rename-tolerant
  baseline fallback matches on ``rule::basename::message``.
"""

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.analysis import Baseline, Finding, lint_source
from repro.analysis.cli import cmd_lint, repo_root, run_lint
from repro.analysis.context import context_from_source
from repro.analysis.engine import lint_contexts
from repro.analysis.program import Program
from repro.analysis.reporters import render_json, render_stats
from repro.replica.runtime import TailerThread


def _lint(source, rel):
    return lint_source(source, rel)


# ---------------------------------------------------------------------------
# Rule fixtures: trigger / suppressed, {S} marks the offending line.
# ---------------------------------------------------------------------------

TRIGGERS = [
    (
        "R14",
        "src/repro/query/bad.py",
        "class Cache:\n"
        "    # repro: guarded-by(_lock): _data\n"
        "    def __init__(self):\n"
        "        self._lock = object()\n"
        "        self._data = 0\n"
        "    def bump(self):\n"
        "        self._data = 1{S}\n",
    ),
    (
        "R14",
        "src/repro/replica/bad_lock.py",
        "import threading\n\n"
        "class Gauge:\n"
        "    # repro: guarded-by(_lock): _total\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._total = 0\n"
        "    def read(self):\n"
        "        return self._total{S}\n",
    ),
    (
        "R15",
        "src/repro/query/bad.py",
        "def refresh(source):\n"
        "    view = source.publish_view()\n"
        "    view.insert_row(1){S}\n"
        "    return view\n",
    ),
    (
        "R15",
        "src/repro/query/bad2.py",
        "class C:\n"
        "    def publish_view(self):{S}\n"
        "        return self.store\n",
    ),
    (
        "R16",
        "src/repro/durable/wal.py",
        '_OPCODES = {{"insert_child": 1, "ghost": 2}}{S}\n'
        '_OP_FIELDS = {{"insert_child": ()}}\n'
        "SUPPORTED_WAL_VERSIONS = (1, 3)\n"
        "_DEFAULT_VERSION = 3\n",
    ),
    (
        "R16",
        "src/repro/query/persist.py",
        "import struct\n\n"
        "_VERSION = 1\n"
        "_SUPPORTED_VERSIONS = (1,)\n\n"
        "def save_store(out, version=1):{S}\n"
        '    out.append(struct.pack(">B", version))\n'
        '    out.append(struct.pack(">I", 0))\n\n'
        "def _load_store_checked(reader):\n"
        '    (version,) = reader.unpack(">B")\n'
        '    (count,) = reader.unpack(">H")\n',
    ),
    (
        "R17",
        "src/repro/durable/collection.py",
        "class DurableCollection:\n"
        "    def insert_child(self, op):\n"
        "        self.live.insert_child(op){S}\n"
        "        self.wal.append(op)\n",
    ),
    (
        "R17",
        "src/repro/shard/bad.py",
        "class ShardRouter:\n"
        "    def apply(self, op):{S}\n"
        "        self.supervisor.request(op)\n",
    ),
]

IDS = [f"{rule}-{path.rsplit('/', 1)[-1]}" for rule, path, _ in TRIGGERS]


@pytest.mark.parametrize("rule,rel,template", TRIGGERS, ids=IDS)
def test_program_rule_triggers(rule, rel, template):
    report = _lint(template.format(S=""), rel)
    assert [f.rule for f in report.findings] == [rule], report.findings
    assert report.exit_code == 1
    finding = report.findings[0]
    assert finding.path == rel
    assert finding.line >= 1 and finding.message


@pytest.mark.parametrize("rule,rel,template", TRIGGERS, ids=IDS)
def test_program_rule_suppresses(rule, rel, template):
    directive = f"  # repro: ignore[{rule}] -- fixture justification"
    report = _lint(template.format(S=directive), rel)
    assert report.findings == [], report.findings
    assert report.exit_code == 0
    assert len(report.suppressed) == 1
    assert report.suppressed[0].justification == "fixture justification"


# ---------------------------------------------------------------------------
# Sanctioned patterns stay clean.
# ---------------------------------------------------------------------------

CLEAN = [
    # R14: access under the declared lock.
    (
        "src/repro/replica/good_lock.py",
        "import threading\n\n"
        "class C:\n"
        "    # repro: guarded-by(_lock): _n\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._n = 0\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self._n += 1\n",
    ),
    # R14: a private helper only ever called under the lock is protected.
    (
        "src/repro/replica/good_lock2.py",
        "import threading\n\n"
        "class C:\n"
        "    # repro: guarded-by(_lock): _n\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._n = 0\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self._inc()\n"
        "    def _inc(self):\n"
        "        self._n += 1\n",
    ),
    # R15: publish_view that freezes, and a consumer that only reads.
    (
        "src/repro/query/good_view.py",
        "class C:\n"
        "    def publish_view(self):\n"
        "        return self.store.frozen_copy()\n\n"
        "def consume(source):\n"
        "    view = source.publish_view()\n"
        '    return view.query("//a")\n',
    ),
    # R16: consistent opcode tables.
    (
        "src/repro/durable/wal.py",
        '_OPCODES = {"insert_child": 1, "batch": 7}\n'
        '_OP_FIELDS = {"insert_child": ()}\n'
        "SUPPORTED_WAL_VERSIONS = (1, 3)\n"
        "_DEFAULT_VERSION = 3\n",
    ),
    # R16: version-dispatched streams that agree for every version.
    (
        "src/repro/query/persist.py",
        "import struct\n\n"
        "_VERSION = 2\n"
        "_SUPPORTED_VERSIONS = (1, 2)\n\n"
        "def save_store(out, version=2):\n"
        '    out.append(struct.pack(">B", version))\n'
        "    if version >= 2:\n"
        '        out.append(struct.pack(">I", 0))\n\n'
        "def _load_store_checked(reader):\n"
        '    (version,) = reader.unpack(">B")\n'
        "    if version >= 2:\n"
        '        (count,) = reader.unpack(">I")\n',
    ),
    # R17: log-then-apply, and delegation to a method that owns the pair.
    (
        "src/repro/durable/collection.py",
        "class DurableCollection:\n"
        "    def insert_child(self, op):\n"
        "        seq = self.wal.append(op)\n"
        "        self.live.insert_child(op)\n"
        "    def bulk_insert(self, ops):\n"
        "        return self.apply_batch(ops)\n"
        "    def apply_batch(self, ops):\n"
        "        seq = self.wal.append(ops)\n"
        "        self.live.apply_batch(ops)\n",
    ),
    # R17: the journal/apply pair may live in a delegated private helper.
    (
        "src/repro/shard/good_router.py",
        "class ShardRouter:\n"
        "    def apply(self, op):\n"
        "        return self._mutate(op)\n"
        "    def _mutate(self, op):\n"
        "        journal = self._journal(op)\n"
        "        journal.buffer.append(op)\n"
        "        return self.supervisor.request(op)\n",
    ),
]


@pytest.mark.parametrize(
    "rel,source", CLEAN, ids=[f"clean-{i}" for i in range(len(CLEAN))]
)
def test_sanctioned_patterns_stay_clean(rel, source):
    report = _lint(source, rel)
    assert report.findings == [], report.findings


# ---------------------------------------------------------------------------
# Pass 0: symbol table and call graph over a synthetic package.
# ---------------------------------------------------------------------------

_SYNTH_FILES = [
    (
        "src/repro/synth/__init__.py",
        "from repro.synth.impl import helper as exported_helper\n",
    ),
    (
        "src/repro/synth/impl.py",
        "def helper():\n"
        "    return 1\n\n"
        "class Engine:\n"
        "    def __init__(self):\n"
        "        self.count = 0\n"
        "    def run(self):\n"
        "        return self.step()\n"
        "    def step(self):\n"
        "        return helper()\n",
    ),
    (
        "src/repro/synth/driver.py",
        "import repro.synth.impl as impl\n"
        "from repro.synth import exported_helper\n"
        "from repro.synth.impl import Engine\n\n"
        "def drive():\n"
        "    engine = Engine()\n"
        "    engine.run()\n"
        "    return exported_helper() + impl.helper()\n\n"
        "class Holder:\n"
        "    def __init__(self, engine: Engine):\n"
        "        self.engine = engine\n"
        "    def go(self):\n"
        "        return self.engine.step()\n",
    ),
]


@pytest.fixture(scope="module")
def synth_program():
    contexts = [context_from_source(src, rel) for rel, src in _SYNTH_FILES]
    return Program(contexts)


def test_symbol_table_modules_and_reexports(synth_program):
    table = synth_program.symbols
    assert set(table.modules) == {
        "repro.synth",
        "repro.synth.impl",
        "repro.synth.driver",
    }
    resolved = table.resolve_function("repro.synth", "exported_helper")
    assert resolved is not None
    module, info = resolved
    assert module == "repro.synth.impl" and info.name == "helper"
    # The driver resolves the same name through the package re-export.
    resolved = table.resolve_function("repro.synth.driver", "exported_helper")
    assert resolved is not None and resolved[0] == "repro.synth.impl"


def test_symbol_table_attr_types_from_annotated_param(synth_program):
    holder = synth_program.symbols.modules["repro.synth.driver"].classes["Holder"]
    assert holder.attr_types["engine"] == "Engine"


def test_callgraph_name_alias_and_reexport_edges(synth_program):
    graph = synth_program.callgraph
    callees = graph.callees("repro.synth.driver:drive")
    assert "repro.synth.impl:Engine.__init__" in callees  # Engine()
    assert "repro.synth.impl:helper" in callees  # both aliases collapse
    # A call through an untracked local stays unresolved, not misresolved.
    assert "engine.run" in graph.unresolved["repro.synth.driver:drive"]


def test_callgraph_self_method_dispatch(synth_program):
    graph = synth_program.callgraph
    assert graph.callees("repro.synth.impl:Engine.run") == {
        "repro.synth.impl:Engine.step"
    }


def test_callgraph_attr_type_dispatch(synth_program):
    graph = synth_program.callgraph
    assert "repro.synth.impl:Engine.step" in graph.callees(
        "repro.synth.driver:Holder.go"
    )


def test_program_stats_shape(synth_program):
    stats = synth_program.stats()
    assert stats["files"] == 3 and stats["modules"] == 3
    assert stats["call_edges"] >= 4 and stats["call_nodes"] >= 6


# ---------------------------------------------------------------------------
# Acceptance: injected wire mismatch, self-clean tree, report plumbing.
# ---------------------------------------------------------------------------


def _lint_args(**overrides):
    defaults = dict(
        paths=[],
        format="text",
        output=None,
        baseline=None,
        no_baseline=True,
        update_baseline=False,
        verbose=False,
        changed_only=False,
        stats=False,
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


def test_injected_wal_opcode_mismatch_fails_cli(tmp_path, capsys):
    real = (repo_root() / "src" / "repro" / "durable" / "wal.py").read_text(
        encoding="utf-8"
    )
    broken = real.replace(
        '"batch": 7,', '"batch": 7,\n    "snapshot_mark": 8,', 1
    )
    assert broken != real, "could not inject the opcode"
    target = tmp_path / "src" / "repro" / "durable" / "wal.py"
    target.parent.mkdir(parents=True)
    target.write_text(broken, encoding="utf-8")
    sarif_path = tmp_path / "lint.sarif"
    exit_code = cmd_lint(
        _lint_args(
            paths=[str(target)], format="sarif", output=str(sarif_path)
        )
    )
    capsys.readouterr()
    assert exit_code == 1
    sarif = json.loads(sarif_path.read_text(encoding="utf-8"))
    results = sarif["runs"][0]["results"]
    r16 = [
        r
        for r in results
        if r["ruleId"] == "R16" and "snapshot_mark" in r["message"]["text"]
    ]
    assert r16, results
    assert not any(r.get("suppressions") for r in r16)
    # The catalog advertises the whole-program rules.
    rule_ids = {r["id"] for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
    assert {"R14", "R15", "R16", "R17"} <= rule_ids


def test_unmodified_wal_module_is_parity_clean(tmp_path, capsys):
    exit_code = cmd_lint(
        _lint_args(paths=[str(repo_root() / "src" / "repro" / "durable")])
    )
    capsys.readouterr()
    assert exit_code == 0


def test_real_tree_self_lints_clean_for_program_rules():
    report = run_lint(use_baseline=False)
    program_findings = [
        f for f in report.findings if f.rule in {"R14", "R15", "R16", "R17"}
    ]
    assert program_findings == [], program_findings
    # The real annotation sites are exercised: each pass absorbed at least
    # one justified suppression or ran clean over annotated code.
    suppressed_rules = {f.rule for f in report.suppressed}
    assert "R14" in suppressed_rules and "R17" in suppressed_rules


def test_rule_timings_and_program_stats_in_json():
    report = _lint("x = 1\n", "src/repro/order/tiny.py")
    payload = json.loads(render_json(report))
    timings = payload["summary"]["rule_timings"]
    assert "R1" in timings and "pass0" in timings and "R16" in timings
    assert payload["summary"]["program"]["files"] == 1
    assert payload["warnings"] == []


def test_changed_only_skips_program_passes():
    ctx = context_from_source("x = 1\n", "src/repro/order/tiny.py")
    report = lint_contexts([ctx], include_program=False)
    assert report.program_stats == {}
    assert any("skipped" in warning for warning in report.warnings)
    assert all(rule.startswith("R") for rule in report.rule_timings)


def test_stats_exhibit_renders(capsys):
    report = _lint("x = 1\n", "src/repro/order/tiny.py")
    text = render_stats(report)
    assert "whole-program pass 0:" in text
    assert "call_edges" in text and "rule runtimes" in text


# ---------------------------------------------------------------------------
# Baseline rename fallback (rule::basename::message).
# ---------------------------------------------------------------------------


def _finding(path, message="msg", rule="R9"):
    return Finding(rule=rule, message=message, path=path, line=3)


def test_baseline_fallback_matches_renamed_file_with_warning():
    baseline = Baseline.from_findings([_finding("src/repro/order/old.py")])
    warnings = []
    active, grandfathered, stale = baseline.split(
        [_finding("src/repro/neworder/old.py")], warnings=warnings
    )
    assert active == [] and stale == []
    assert len(grandfathered) == 1 and grandfathered[0].baselined
    assert warnings and "renamed" in warnings[0]


def test_baseline_fallback_requires_same_basename():
    baseline = Baseline.from_findings([_finding("src/repro/order/old.py")])
    warnings = []
    active, grandfathered, stale = baseline.split(
        [_finding("src/repro/order/other.py")], warnings=warnings
    )
    assert len(active) == 1 and grandfathered == []
    assert len(stale) == 1 and warnings == []


def test_baseline_exact_match_still_preferred_over_fallback():
    entries = [
        _finding("src/repro/order/old.py"),
        _finding("src/repro/neworder/old.py"),
    ]
    baseline = Baseline.from_findings(entries)
    warnings = []
    active, grandfathered, stale = baseline.split(entries, warnings=warnings)
    assert active == [] and stale == [] and warnings == []
    assert len(grandfathered) == 2


def test_baseline_fallback_absorbs_duplicate_entries():
    baseline = Baseline.from_findings(
        [_finding("src/repro/order/old.py"), _finding("src/repro/order/old.py")]
    )
    warnings = []
    moved = [
        _finding("src/repro/neworder/old.py"),
        _finding("src/repro/neworder/old.py"),
    ]
    active, grandfathered, stale = baseline.split(moved, warnings=warnings)
    assert active == [] and stale == []
    assert len(grandfathered) == 2 and len(warnings) == 2


# ---------------------------------------------------------------------------
# TailerThread counter lock: the R14 fix in repro.replica.runtime.
# ---------------------------------------------------------------------------


class _BoomReplica:
    def poll(self):
        raise RuntimeError("boom")


class _CountingReplica:
    def __init__(self):
        self.calls = 0

    def poll(self):
        self.calls += 1
        return 1


def test_tailer_thread_reraises_error_under_lock():
    tailer = TailerThread(_BoomReplica(), interval=0.001).start()
    deadline = time.monotonic() + 5.0
    while tailer.error is None and time.monotonic() < deadline:
        time.sleep(0.005)
    with pytest.raises(RuntimeError, match="boom"):
        tailer.stop()


def test_tailer_thread_counters_progress_and_stop_is_clean():
    replica = _CountingReplica()
    tailer = TailerThread(replica, interval=0.001).start()
    deadline = time.monotonic() + 5.0
    while replica.calls < 3 and time.monotonic() < deadline:
        time.sleep(0.005)
    tailer.stop()
    assert tailer.polls >= 3 and tailer.applied >= 3


def test_tailer_runtime_module_passes_lock_discipline():
    runtime = repo_root() / "src" / "repro" / "replica" / "runtime.py"
    source = runtime.read_text(encoding="utf-8")
    assert "# repro: guarded-by(_lock): polls, applied, error" in source
    report = _lint(source, "src/repro/replica/runtime.py")
    assert [f for f in report.findings if f.rule == "R14"] == []
    # Regression: dropping the lock around the counter updates must fail.
    broken = source.replace(
        "                with self._lock:\n"
        "                    self.polls += 1\n"
        "                    self.applied += applied\n",
        "                self.polls += 1\n"
        "                self.applied += applied\n",
        1,
    )
    assert broken != source
    report = _lint(broken, "src/repro/replica/runtime.py")
    assert {f.rule for f in report.findings} == {"R14"}
    assert {f.line for f in report.findings} and len(report.findings) == 2
