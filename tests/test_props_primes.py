"""Property-based tests (hypothesis) for the number-theory substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primes.crt import CongruenceSystem, solve_congruences, solve_congruences_euler
from repro.primes.euclid import extended_gcd, gcd, lcm, modular_inverse
from repro.primes.primality import is_prime, next_prime
from repro.primes.sieve import primes_first_n
from repro.primes.totient import totient

PRIMES_1K = primes_first_n(1000)


class TestEuclidProperties:
    @given(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9))
    def test_gcd_matches_math(self, a, b):
        assert gcd(a, b) == math.gcd(a, b)

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_bezout(self, a, b):
        g, x, y = extended_gcd(a, b)
        assert a * x + b * y == g == math.gcd(a, b)

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_lcm_matches_math(self, a, b):
        assert lcm(a, b) == math.lcm(a, b)

    @given(st.integers(1, 10**6), st.integers(2, 10**6))
    def test_modular_inverse(self, a, m):
        if math.gcd(a, m) == 1:
            inverse = modular_inverse(a, m)
            assert a * inverse % m == 1


class TestPrimalityProperties:
    @given(st.integers(2, 10**7))
    def test_is_prime_matches_trial_division(self, n):
        brute = all(n % d for d in range(2, math.isqrt(n) + 1))
        assert is_prime(n) == brute

    @given(st.integers(0, 10**6))
    def test_next_prime_is_prime_and_minimal(self, n):
        p = next_prime(n)
        assert is_prime(p) and p > n
        assert not any(is_prime(q) for q in range(n + 1, p))


class TestTotientProperties:
    @given(st.integers(1, 5000))
    def test_totient_counts_coprimes(self, n):
        assert totient(n) == sum(1 for k in range(1, n + 1) if math.gcd(k, n) == 1)

    @given(st.sampled_from(PRIMES_1K), st.integers(1, 5))
    def test_totient_of_prime_power(self, p, k):
        assert totient(p**k) == p**k - p ** (k - 1)


@st.composite
def coprime_congruences(draw):
    """Random systems with distinct prime moduli (always coprime)."""
    count = draw(st.integers(1, 6))
    moduli = draw(
        st.lists(st.sampled_from(PRIMES_1K), min_size=count, max_size=count, unique=True)
    )
    residues = [draw(st.integers(0, m - 1)) for m in moduli]
    return moduli, residues


class TestCrtProperties:
    @given(coprime_congruences())
    def test_solution_satisfies_all_congruences(self, system):
        moduli, residues = system
        x = solve_congruences(moduli, residues)
        assert all(x % m == r for m, r in zip(moduli, residues))
        product = math.prod(moduli)
        assert 0 <= x < product

    @given(coprime_congruences())
    @settings(max_examples=30)  # the Euler formula is deliberately slow
    def test_euler_formula_agrees(self, system):
        moduli, residues = system
        assert solve_congruences_euler(moduli, residues) == solve_congruences(
            moduli, residues
        )

    @given(coprime_congruences())
    def test_uniqueness_modulo_product(self, system):
        moduli, residues = system
        x = solve_congruences(moduli, residues)
        product = math.prod(moduli)
        # any other solution differs by a multiple of the product
        assert solve_congruences(moduli, [(x + product) % m for m in moduli]) == x

    @given(coprime_congruences(), st.data())
    def test_incremental_append_equals_batch_solve(self, system, data):
        moduli, residues = system
        extra_prime = data.draw(
            st.sampled_from([p for p in PRIMES_1K if p not in moduli])
        )
        extra_residue = data.draw(st.integers(0, extra_prime - 1))
        incremental = CongruenceSystem(moduli, residues)
        incremental.value  # force the cache so append takes the fast path
        incremental.append(extra_prime, extra_residue)
        batch = solve_congruences(
            list(moduli) + [extra_prime], list(residues) + [extra_residue]
        )
        assert incremental.value == batch

    @given(coprime_congruences(), st.data())
    def test_set_residues_consistent(self, system, data):
        moduli, residues = system
        updates = {
            m: data.draw(st.integers(0, m - 1))
            for m in data.draw(st.sets(st.sampled_from(moduli)))
        }
        live = CongruenceSystem(moduli, residues)
        live.set_residues(updates)
        assert live.check()
        for m, r in updates.items():
            assert live.value % m == r
