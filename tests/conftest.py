"""Shared fixtures: a menagerie of tree shapes every scheme must handle."""

from __future__ import annotations

import pytest

from repro.datasets.random_tree import RandomTreeBuilder, chain_tree, perfect_tree, star_tree
from repro.xmlkit.builder import element
from repro.xmlkit.tree import XmlElement


@pytest.fixture
def paper_tree() -> XmlElement:
    """The running example shape of the paper's Figures 2/9: a root with
    three children, the first of which has two children of its own."""
    return element(
        "root",
        element("a", element("a1"), element("a2")),
        element("b"),
        element("c"),
    )


@pytest.fixture
def book_tree() -> XmlElement:
    """Figure 6's repeated-pattern example: a book with three authors."""
    return element(
        "book",
        element("title"),
        element("author"),
        element("author"),
        element("author"),
    )


def tree_menagerie():
    """A list of (name, tree) covering the structural corner cases."""
    return [
        ("single", element("only")),
        ("chain", chain_tree(6)),
        ("star", star_tree(12)),
        ("perfect-2-3", perfect_tree(2, 3)),
        ("perfect-3-2", perfect_tree(3, 2)),
        ("lopsided", element(
            "r",
            element("a", element("b", element("c", element("d")))),
            element("e"),
        )),
        ("random-60", RandomTreeBuilder(seed=7, max_depth=5, max_fanout=6).build(60)),
        ("random-200", RandomTreeBuilder(seed=11, max_depth=7, max_fanout=9).build(200)),
    ]


@pytest.fixture(params=tree_menagerie(), ids=lambda pair: pair[0])
def any_tree(request) -> XmlElement:
    name, tree = request.param
    return tree.copy()  # tests may mutate; keep the originals pristine
