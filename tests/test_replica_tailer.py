"""WalReader incremental scans and WalTailer stream semantics."""

import os
import struct
import zlib

import pytest

from repro.durable import wal as wal_module
from repro.durable.wal import (
    WAL_HEADER,
    WalReader,
    WriteAheadLog,
    scan_wal,
    scan_wal_from,
)
from repro.errors import ReplicationError
from repro.replica import FileTransport, WalTailer

_HEADER = struct.Struct(">QII")


def _append(wal, count, start=0):
    for i in range(count):
        wal.append({"op": "noop", "i": start + i})


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "wal.log"


class TestWalReader:
    def test_read_from_resumes_at_an_offset(self, wal_path):
        wal = WriteAheadLog(wal_path, fsync="never")
        _append(wal, 5)
        full = scan_wal(wal_path)
        mid = full.records[2].end_offset
        scan = scan_wal_from(wal_path, mid, expected_seq=4)
        assert [r.seq for r in scan.records] == [4, 5]
        assert scan.stop_reason == "clean"
        wal.close()

    def test_read_from_past_eof_reports_current_size(self, wal_path):
        wal = WriteAheadLog(wal_path, fsync="never")
        _append(wal, 1)
        size = os.path.getsize(wal_path)
        scan = scan_wal_from(wal_path, size)
        assert scan.records == [] and scan.total_bytes == size
        # A shrink is visible as total_bytes < offset.
        shrink = scan_wal_from(wal_path, size + 100)
        assert shrink.total_bytes == size < size + 100
        wal.close()

    def test_last_lsn_advances_without_rescanning(self, wal_path):
        wal = WriteAheadLog(wal_path, fsync="never")
        reader = WalReader(wal_path)
        assert reader.last_lsn() == 0
        _append(wal, 3)
        assert reader.last_lsn() == 3
        checkpoint = reader.offset
        _append(wal, 2)
        assert reader.last_lsn() == 5
        # The cursor moved strictly forward: the second poll started where
        # the first stopped.
        assert reader.offset > checkpoint
        wal.close()

    def test_reader_rewinds_after_reset(self, wal_path):
        wal = WriteAheadLog(wal_path, fsync="never")
        _append(wal, 4)
        reader = WalReader(wal_path)
        assert reader.last_lsn() == 4
        wal.reset(next_seq=10)
        _append(wal, 1, start=9)
        assert reader.last_lsn() == 10
        wal.close()

    def test_torn_tail_reports_short_not_corruption(self, wal_path):
        wal = WriteAheadLog(wal_path, fsync="never")
        _append(wal, 2)
        wal.close()
        with open(wal_path, "ab") as handle:
            handle.write(_HEADER.pack(3, 100, 0))  # length promises more
        reader = WalReader(wal_path)
        assert reader.last_lsn() == 2
        assert reader.last_stop_reason == "short"


class TestWalTailer:
    def _tailer(self, path, **kwargs):
        return WalTailer(FileTransport(path), **kwargs)

    def test_incremental_polls_return_only_new_records(self, wal_path):
        wal = WriteAheadLog(wal_path, fsync="never")
        tailer = self._tailer(wal_path)
        assert tailer.poll() == []
        _append(wal, 3)
        first = tailer.poll()
        assert [r.seq for r in first] == [1, 2, 3]
        assert tailer.poll() == []
        _append(wal, 2)
        assert [r.seq for r in tailer.poll()] == [4, 5]
        wal.close()

    def test_small_chunks_drain_the_whole_log(self, wal_path):
        wal = WriteAheadLog(wal_path, fsync="never")
        _append(wal, 20)
        tailer = self._tailer(wal_path, chunk_bytes=64)
        assert [r.seq for r in tailer.poll()] == list(range(1, 21))
        wal.close()

    def test_torn_tail_is_pending_then_consumed(self, wal_path):
        wal = WriteAheadLog(wal_path, fsync="never")
        _append(wal, 2)
        tailer = self._tailer(wal_path)
        tailer.poll()
        # Simulate the primary mid-append: header promising the payload's
        # full length, only part of it on disk.  The payload must be in the
        # log's own (v3) encoding or the eventual full read would be a
        # decode error, not a consumed record.
        payload = wal_module._encode_payload(
            {"op": "noop", "i": 99, "note": "x" * 30}, wal.version
        )
        crc = zlib.crc32(struct.pack(">QI", 3, len(payload)) + payload)
        frame = _HEADER.pack(3, len(payload), crc) + payload
        with open(wal_path, "ab") as handle:
            handle.write(frame[:30])
        assert tailer.poll() == []  # pending, not an error
        with open(wal_path, "ab") as handle:
            handle.write(frame[30:])
        assert [r.seq for r in tailer.poll()] == [3]
        wal.close()

    def test_crc_damage_confirmed_by_growth_raises(self, wal_path):
        wal = WriteAheadLog(wal_path, fsync="never")
        _append(wal, 2)
        tailer = self._tailer(wal_path)
        tailer.poll()
        payload = b'{"op": "noop", "i": 99}'
        frame = _HEADER.pack(3, len(payload), 12345) + payload  # bad CRC
        with open(wal_path, "ab") as handle:
            handle.write(frame)
        # First sighting: could still be a torn write racing us.
        assert tailer.poll() == []
        with open(wal_path, "ab") as handle:
            handle.write(b"newer bytes beyond the damage")
        with pytest.raises(ReplicationError):
            tailer.poll()
        wal.close()

    def test_authentic_damage_raises_immediately(self, wal_path):
        wal = WriteAheadLog(wal_path, fsync="never")
        _append(wal, 2)
        tailer = self._tailer(wal_path)
        tailer.poll()
        # A CRC-valid record with a broken chain (seq 7 after 2) cannot be
        # a torn write: the bytes are authentic and authentically wrong.
        payload = b'{"op": "noop"}'
        crc = zlib.crc32(struct.pack(">QI", 7, len(payload)) + payload)
        with open(wal_path, "ab") as handle:
            handle.write(_HEADER.pack(7, len(payload), crc) + payload)
        with pytest.raises(ReplicationError):
            tailer.poll()
        wal.close()

    def test_rewind_across_reset_rereads_new_generation(self, wal_path):
        wal = WriteAheadLog(wal_path, fsync="never")
        _append(wal, 5)
        tailer = self._tailer(wal_path)
        assert len(tailer.poll()) == 5
        # reset() rewrites the file shorter; the tailer must rewind and
        # pick up the new generation from its header.
        wal.reset(next_seq=6)
        _append(wal, 2, start=5)
        records = tailer.poll()
        assert [r.seq for r in records] == [6, 7]
        wal.close()

    def test_foreign_file_is_rejected(self, tmp_path):
        bogus = tmp_path / "not-a-wal.log"
        bogus.write_bytes(b"XXXXX" + b"garbage" * 10)
        tailer = self._tailer(bogus)
        with pytest.raises(ReplicationError):
            tailer.poll()

    def test_header_only_then_records(self, wal_path):
        # A freshly created WAL is just the 5-byte header.
        wal = WriteAheadLog(wal_path, fsync="never")
        tailer = self._tailer(wal_path)
        assert tailer.poll() == []
        assert tailer.offset == len(WAL_HEADER)
        _append(wal, 1)
        assert [r.seq for r in tailer.poll()] == [1]
        wal.close()
