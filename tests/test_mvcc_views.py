"""MVCC read views: isolation, audits, and the threaded soak.

The soak is the acceptance test for the concurrency story: N reader
threads run the paper's nine Table 2 queries against whatever view is
latest while a randomized mutation stream (singles and batches) runs on
the writer.  Every view a reader touches must be internally audit-clean,
and sampled views must be byte-identical to an independent replay of the
operation history up to the sequence number the view claims — a reader
may see *stale* state, never *wrong* state.
"""

import pytest

from repro.bench.response import PAPER_QUERIES
from repro.datasets.shakespeare import play
from repro.durable import DurableCollection, collection_fingerprint
from repro.durable.recovery import apply_operation
from repro.durable.wal import scan_wal
from repro.errors import QueryEvaluationError
from repro.query.live import LiveCollection
from repro.replica import ReaderPool
from repro.xmlkit.parser import parse_document

DOC = "<r><a><a1/><a2/></a><b/><c/></r>"


class TestReadViewBasics:
    def test_view_is_isolated_from_later_writes(self):
        live = LiveCollection([parse_document(DOC)])
        view = live.publish_view(applied_seq=0)
        before = view.count("//*")
        live.insert_child(live.documents[0], 0, tag="new")
        assert view.count("//*") == before
        assert live.count("//*") == before + 1

    def test_stale_view_rejects_rows_born_after_it(self):
        live = LiveCollection([parse_document(DOC)])
        view = live.publish_view()
        live.insert_child(live.documents[0], 0, tag="new")
        fresh = live.publish_view()
        new_row = next(r for r in fresh.engine.store.rows if r.tag == "new")
        with pytest.raises(QueryEvaluationError):
            view.engine.store.ops.order_key(new_row)

    def test_audit_flags_structural_damage(self):
        live = LiveCollection([parse_document(DOC)])
        view = live.publish_view()
        assert view.audit() == []
        view.engine.store.rows[2].parent_id = 10_000
        assert view.audit() != []

    def test_versions_are_monotonic(self):
        live = LiveCollection([parse_document(DOC)])
        first = live.publish_view(applied_seq=1)
        second = live.publish_view(applied_seq=2)
        assert second.version == first.version + 1
        assert live.latest_view() is second

    def test_read_view_publishes_lazily_once(self):
        live = LiveCollection([parse_document(DOC)])
        assert live.latest_view() is None
        view = live.read_view()
        assert live.read_view() is view


class TestThreadedSoak:
    """N readers vs a randomized 500+-op mutation stream."""

    OPERATIONS = 500
    READERS = 4

    def test_soak_views_stay_clean_and_historically_exact(self, tmp_path):
        from random import Random

        primary = DurableCollection.create(
            tmp_path / "col",
            [play(seed=5, acts=3, node_budget=600)],
            fsync="never",
        )
        queries = [text for _, text in PAPER_QUERIES]
        seen_views = {}

        pool = ReaderPool(
            primary.live.latest_view,
            queries,
            threads=self.READERS,
            current_seq=lambda: primary.last_seq,
        ).start()

        rng = Random(99)
        root = primary.documents[0]
        step = 0
        while step < self.OPERATIONS:
            roll = rng.random()
            position = rng.randrange(max(1, len(root.children)))
            if roll < 0.10:
                count = rng.randint(2, 5)
                primary.bulk_insert([(root, position, "SPEECH")] * count)
            elif roll < 0.20 and len(root.children) > 4:
                victim = root.children[position]
                if victim.tag == "SPEECH":
                    primary.delete(victim)
                else:
                    primary.insert_child(root, position, tag="SPEECH")
            else:
                primary.insert_child(root, position, tag="SPEECH")
            # The writer publishes after every mutation; every 10th carries
            # a fingerprint (computed under the publish lock, so it names
            # exactly the state the view captured) for the history oracle.
            sample = step % 10 == 0
            view = primary.live.publish_view(
                applied_seq=primary.last_seq, fingerprint=sample
            )
            if sample:
                seen_views[view.applied_seq] = view
            step += 1

        report = pool.stop()
        assert report.errors == 0
        assert report.reads > 0

        # Every sampled view is internally audit-clean.
        for seq, view in sorted(seen_views.items()):
            assert view.audit() == [], f"view at seq {seq} failed its audit"

        # Byte-identity oracle: replay the WAL history into a twin and
        # fingerprint it at each sampled LSN.
        records = scan_wal(primary.directory / "wal.log").records
        # The twin must match the primary's config exactly: the fingerprint
        # covers group size and strategy, and create() pins strategy="scan".
        twin = LiveCollection([play(seed=5, acts=3, node_budget=600)], strategy="scan")
        applied = 0
        for record in records:
            apply_operation(twin, record.op)
            applied = record.seq
            if applied in seen_views:
                view = seen_views[applied]
                assert collection_fingerprint(twin) == view.fingerprint, (
                    f"view at seq {applied} diverged from its history"
                )
        assert applied == primary.last_seq
        # Staleness was actually measured (the whole point of follower
        # reads) and bounded by the stream length.
        assert report.staleness_samples
        assert report.max_staleness <= self.OPERATIONS
        primary.close()
