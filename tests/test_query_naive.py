"""Dedicated unit tests for the naive (tree-walking) reference evaluator."""

import pytest

from repro.errors import QueryEvaluationError
from repro.query.naive import NaiveEvaluator
from repro.xmlkit.parser import parse_document

DOC = """
<play>
  <title>T</title>
  <act><scene><speech><line/><line/></speech></scene></act>
  <act><scene><speech><line/></speech><speech><line/></speech></scene></act>
</play>
"""


@pytest.fixture
def oracle():
    return NaiveEvaluator([parse_document(DOC)])


class TestAxes:
    def test_child_and_descendant(self, oracle):
        assert oracle.count("/play/act") == 2
        assert oracle.count("/play//line") == 4
        assert oracle.count("/play/line") == 0

    def test_wildcards(self, oracle):
        assert oracle.count("/play/*") == 3
        assert oracle.count("/*") == 13

    def test_positions(self, oracle):
        rows = oracle.evaluate("/play/act[2]//speech")
        assert len(rows) == 2

    def test_text_predicate(self, oracle):
        assert oracle.count("/play/title[.='T']") == 1
        assert oracle.count("/play/title[.='X']") == 0

    def test_parent_and_ancestor(self, oracle):
        assert [n.tag for n in oracle.evaluate("/line/Ancestor::act")] == ["act", "act"]
        assert oracle.count("/speech/Parent::scene") == 2

    def test_following_preceding(self, oracle):
        assert oracle.count("/act[1]/Following::line") == 2
        assert oracle.count("/act[2]/Preceding::line") == 2

    def test_expanded_axis(self, oracle):
        # the last act has nothing after it, but `//Following::` reaches
        # back inside: the line after the act's leftmost leaf
        plain = oracle.count("/act[2]/Following::line")
        expanded = oracle.count("/act[2]//Following::line")
        assert plain == 0 and expanded == 1

    def test_sibling_axes(self, oracle):
        # speech[2] opens act 2's scene, followed by one sibling speech
        assert oracle.count("/speech[2]/Following-Sibling::speech") == 1
        assert oracle.count("/speech[3]/Preceding-Sibling::speech") == 1

    def test_results_in_document_order(self, oracle):
        rows = oracle.evaluate("/play//line")
        positions = [oracle._order(node) for node in rows]
        assert positions == sorted(positions)


class TestErrors:
    def test_empty_collection(self):
        with pytest.raises(QueryEvaluationError):
            NaiveEvaluator([])

    def test_axis_start_rejected(self, oracle):
        with pytest.raises(QueryEvaluationError):
            oracle.evaluate("/Following::act")

    def test_empty_query_rejected(self, oracle):
        from repro.query.ast import Query

        with pytest.raises(QueryEvaluationError):
            oracle.evaluate(Query(steps=()))
