"""Tests for text-value predicates — the paper's `book/author[2]/"John"`."""

import pytest

from repro.query.engine import QueryEngine
from repro.query.store import LabelStore
from repro.query.xpath import parse_query
from repro.xmlkit.parser import parse_document

LIBRARY = """
<library>
  <book>
    <title>Networks</title>
    <author>Jane</author>
    <author>John</author>
  </book>
  <book>
    <title>Databases</title>
    <author>John</author>
    <author>Alice</author>
  </book>
</library>
"""


@pytest.fixture(params=["interval", "prime", "prefix-2"])
def engine(request):
    return QueryEngine(
        LabelStore.build([parse_document(LIBRARY)], scheme=request.param)
    )


class TestParsing:
    def test_text_predicate_parsed(self):
        step = parse_query("/book/author[.='John']").steps[1]
        assert step.text == "John"
        assert step.position is None

    def test_position_and_text_combined(self):
        step = parse_query("/book/author[2][.='John']").steps[1]
        assert step.position == 2
        assert step.text == "John"

    def test_double_quotes(self):
        assert parse_query('/a[.="x y"]').steps[0].text == "x y"

    def test_str_round_trip_mentions_text(self):
        assert "John" in str(parse_query("/book/author[.='John']"))


class TestEvaluation:
    def test_filter_by_text(self, engine):
        rows = engine.evaluate("/library//author[.='John']")
        assert len(rows) == 2
        assert all(row.text == "John" for row in rows)

    def test_papers_motivating_query(self, engine):
        """`book/author[2]/"John"`: books whose SECOND author is John."""
        rows = engine.evaluate("/book/author[2][.='John']")
        assert len(rows) == 1
        assert rows[0].node.parent.children[0].text == "Networks"

    def test_no_match(self, engine):
        assert engine.count("/book/author[.='Nobody']") == 0

    def test_text_on_first_step(self, engine):
        assert engine.count("/author[.='Alice']") == 1

    def test_text_with_axis_step(self, engine):
        rows = engine.evaluate("/book/title[.='Networks']/Following::author")
        # the two authors of that book and everything after it
        assert len(rows) == 4

    def test_text_survives_persistence(self, engine, tmp_path):
        from repro.query.persist import load_store, save_store

        path = tmp_path / "store.bin"
        save_store(engine.store, path)
        reloaded = QueryEngine(load_store(path))
        assert reloaded.count("/library//author[.='John']") == 2
