"""Unit tests for repro.xmlkit.tokenizer."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xmlkit.events import (
    Characters,
    Comment,
    EndElement,
    ProcessingInstruction,
    StartElement,
)
from repro.xmlkit.tokenizer import tokenize


def events(text):
    return list(tokenize(text))


class TestTags:
    def test_simple_element(self):
        assert events("<a></a>") == [StartElement("a"), EndElement("a")]

    def test_self_closing(self):
        assert events("<a/>") == [StartElement("a"), EndElement("a")]

    def test_nested(self):
        assert events("<a><b/></a>") == [
            StartElement("a"),
            StartElement("b"),
            EndElement("b"),
            EndElement("a"),
        ]

    def test_names_with_punctuation(self):
        assert events("<ns:tag-1.x/>")[0] == StartElement("ns:tag-1.x")

    def test_whitespace_in_closing_tag(self):
        assert events("<a></a >") == [StartElement("a"), EndElement("a")]

    def test_missing_close_bracket(self):
        with pytest.raises(XmlSyntaxError):
            events("<a")

    def test_bad_name_start(self):
        with pytest.raises(XmlSyntaxError):
            events("<1a/>")


class TestAttributes:
    def test_double_and_single_quotes(self):
        (start, _end) = events('<a x="1" y=\'2\'/>')
        assert start.attributes == {"x": "1", "y": "2"}

    def test_whitespace_around_equals(self):
        (start, _end) = events('<a x = "1"/>')
        assert start.attributes == {"x": "1"}

    def test_entities_in_attribute(self):
        (start, _end) = events('<a x="&lt;&amp;&gt;"/>')
        assert start.attributes == {"x": "<&>"}

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XmlSyntaxError):
            events('<a x="1" x="2"/>')

    def test_unquoted_value_rejected(self):
        with pytest.raises(XmlSyntaxError):
            events("<a x=1/>")

    def test_unterminated_value_rejected(self):
        with pytest.raises(XmlSyntaxError):
            events('<a x="1/>')

    def test_angle_bracket_in_value_rejected(self):
        with pytest.raises(XmlSyntaxError):
            events('<a x="<"/>')


class TestCharacterData:
    def test_plain_text(self):
        assert events("<a>hello</a>")[1] == Characters("hello")

    def test_predefined_entities(self):
        assert events("<a>&amp;&lt;&gt;&apos;&quot;</a>")[1] == Characters("&<>'\"")

    def test_decimal_char_reference(self):
        assert events("<a>&#65;</a>")[1] == Characters("A")

    def test_hex_char_reference(self):
        assert events("<a>&#x41;&#x42;</a>")[1] == Characters("AB")

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlSyntaxError):
            events("<a>&nope;</a>")

    def test_bad_char_reference_rejected(self):
        with pytest.raises(XmlSyntaxError):
            events("<a>&#xZZ;</a>")

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XmlSyntaxError):
            events("<a>&amp</a>")

    def test_cdata_section(self):
        assert events("<a><![CDATA[<not>&markup;]]></a>")[1] == Characters(
            "<not>&markup;"
        )

    def test_unterminated_cdata(self):
        with pytest.raises(XmlSyntaxError):
            events("<a><![CDATA[oops</a>")


class TestMisc:
    def test_comment(self):
        assert events("<a><!-- hi --></a>")[1] == Comment(" hi ")

    def test_unterminated_comment(self):
        with pytest.raises(XmlSyntaxError):
            events("<a><!-- oops</a>")

    def test_processing_instruction(self):
        assert events("<?xml version='1.0'?><a/>")[0] == ProcessingInstruction(
            "xml", "version='1.0'"
        )

    def test_doctype_skipped(self):
        assert events("<!DOCTYPE play SYSTEM 'play.dtd'><a/>") == [
            StartElement("a"),
            EndElement("a"),
        ]

    def test_doctype_with_internal_subset(self):
        text = "<!DOCTYPE a [<!ELEMENT a (b)> <!ELEMENT b EMPTY>]><a><b/></a>"
        assert events(text)[0] == StartElement("a")

    def test_unsupported_markup_decl(self):
        with pytest.raises(XmlSyntaxError):
            events("<!ELEMENT a (b)><a/>")

    def test_error_carries_location(self):
        with pytest.raises(XmlSyntaxError) as exc_info:
            events("<a>\n  &bad;</a>")
        assert exc_info.value.line == 2
