"""Property-based tests: every labeling scheme agrees with the tree, on
random trees and through random update sequences."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labeling.dewey import DeweyScheme
from repro.labeling.interval import StartEndIntervalScheme, XissIntervalScheme
from repro.labeling.prefix import Bits, Prefix1Scheme, Prefix2Scheme, prefix2_next_code
from repro.labeling.prime import BottomUpPrimeScheme, PrimeScheme
from repro.xmlkit.tree import XmlElement

SCHEME_FACTORIES = [
    XissIntervalScheme,
    StartEndIntervalScheme,
    Prefix1Scheme,
    Prefix2Scheme,
    DeweyScheme,
    BottomUpPrimeScheme,
    lambda: PrimeScheme(reserved_primes=0, power2_leaves=False),
    lambda: PrimeScheme(reserved_primes=8, power2_leaves=True),
    lambda: PrimeScheme(reserved_primes=8, power2_leaves=True, leaf_threshold_bits=4),
]


@st.composite
def random_trees(draw, max_nodes=40):
    """Random trees encoded as parent-pointer lists (always a valid tree)."""
    size = draw(st.integers(1, max_nodes))
    nodes = [XmlElement("n0")]
    for index in range(1, size):
        parent = nodes[draw(st.integers(0, index - 1))]
        nodes.append(parent.append(XmlElement(f"n{index}")))
    return nodes[0]


@st.composite
def update_scripts(draw):
    """A seed tree plus a random sequence of insert operations."""
    root = draw(random_trees(max_nodes=15))
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["leaf", "wrap"]),
                st.integers(0, 10**6),  # node selector
                st.integers(0, 10**6),  # position selector
            ),
            max_size=8,
        )
    )
    return root, operations


class TestSchemesOnRandomTrees:
    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_all_schemes_match_ground_truth(self, root):
        for factory in SCHEME_FACTORIES:
            scheme = factory().label_tree(root)
            _pairs, mismatches = scheme.check_against_tree()
            assert mismatches == 0, f"{scheme.name} mislabels a random tree"

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_labels_unique_per_scheme(self, root):
        for factory in SCHEME_FACTORIES:
            scheme = factory().label_tree(root)
            labels = [scheme.label_of(n) for n in root.iter_preorder()]
            assert len(set(map(repr, labels))) == len(labels), scheme.name


class TestSchemesUnderUpdates:
    @given(update_scripts())
    @settings(max_examples=25, deadline=None)
    def test_schemes_survive_random_update_sequences(self, script):
        root, operations = script
        for factory in SCHEME_FACTORIES:
            tree = root.copy()
            scheme = factory().label_tree(tree)
            for kind, node_selector, position_selector in operations:
                nodes = list(tree.iter_preorder())
                target = nodes[node_selector % len(nodes)]
                if kind == "leaf":
                    scheme.insert_leaf(target)
                elif target.children:
                    end = 1 + position_selector % len(target.children)
                    scheme.insert_internal(target, 0, end)
            _pairs, mismatches = scheme.check_against_tree()
            assert mismatches == 0, f"{scheme.name} broken by updates {operations}"

    @given(random_trees(max_nodes=20), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_deletion_never_relabels(self, root, selector):
        descendants = list(root.iter_descendants())
        if not descendants:
            return
        target_index = selector % len(descendants)
        for factory in SCHEME_FACTORIES:
            tree = root.copy()
            scheme = factory().label_tree(tree)
            victim = list(tree.iter_descendants())[target_index]
            report = scheme.delete(victim)
            assert report.count == 0
            _pairs, mismatches = scheme.check_against_tree()
            assert mismatches == 0


class TestBitsProperties:
    bits = st.builds(
        lambda length, value: Bits(value % (1 << length) if length else 0, length),
        st.integers(0, 24),
        st.integers(0, 2**24),
    )

    @given(bits, bits)
    def test_concat_length_and_string(self, a, b):
        joined = a.concat(b)
        assert len(joined) == len(a) + len(b)
        assert str(joined) == str(a) + str(b)

    @given(bits, bits)
    def test_prefix_test_matches_string_semantics(self, a, b):
        assert a.is_prefix_of(b) == str(b).startswith(str(a))

    @given(bits)
    def test_round_trip_via_string(self, a):
        assert Bits.from_string(str(a)) == a

    @given(st.integers(0, 300))
    def test_prefix2_sequence_prefix_free_pairwise_adjacent(self, start):
        code = Bits(0, 1)
        for _ in range(start):
            code = prefix2_next_code(code)
        successor = prefix2_next_code(code)
        assert not code.is_prefix_of(successor)
        assert not successor.is_prefix_of(code)
        assert str(code) < str(successor)


class TestPrimeLabelAlgebra:
    @given(random_trees(max_nodes=30))
    @settings(max_examples=30, deadline=None)
    def test_label_value_is_product_of_path_self_labels(self, root):
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=False).label_tree(root)
        for node in root.iter_preorder():
            product = 1
            cursor = node
            while cursor is not None:
                product *= scheme.label_of(cursor).self_label
                cursor = cursor.parent
            assert scheme.label_of(node).value == product

    @given(random_trees(max_nodes=30))
    @settings(max_examples=30, deadline=None)
    def test_parent_value_identity(self, root):
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=False).label_tree(root)
        for node in root.iter_descendants():
            assert (
                scheme.label_of(node).parent_value
                == scheme.label_of(node.parent).value
            )
