"""Unit tests for the analytic size models (Section 3.1, eqs 1–3)."""

import pytest

from repro.labeling.sizemodel import (
    figure4_series,
    figure5_series,
    perfect_tree_nodes,
    prefix1_max_bits,
    prefix1_self_label_bits,
    prefix2_max_bits,
    prefix2_self_label_bits,
    prime_max_bits,
    prime_self_label_bits,
)


class TestPerfectTreeNodes:
    @pytest.mark.parametrize(
        "depth, fanout, expected",
        [(0, 3, 1), (1, 3, 4), (2, 3, 13), (3, 2, 15), (2, 1, 3), (10, 1, 11)],
    )
    def test_known_values(self, depth, fanout, expected):
        assert perfect_tree_nodes(depth, fanout) == expected

    def test_matches_generated_tree(self):
        from repro.datasets.random_tree import perfect_tree

        assert perfect_tree(3, 4).stats().node_count == perfect_tree_nodes(3, 4)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            perfect_tree_nodes(-1, 2)
        with pytest.raises(ValueError):
            perfect_tree_nodes(2, 0)


class TestSelfLabelModels:
    def test_prefix1_linear(self):
        assert prefix1_self_label_bits(10) == 10.0
        assert prefix1_self_label_bits(50) == 50.0

    def test_prefix2_logarithmic(self):
        assert prefix2_self_label_bits(16) == pytest.approx(16.0)
        assert prefix2_self_label_bits(2) == pytest.approx(4.0)

    def test_prime_vs_fanout_sublogarithmic(self):
        # The paper's Figure 4 claim: prime barely notices fan-out.
        small = prime_self_label_bits(2, 5)
        large = prime_self_label_bits(2, 50)
        assert large - small < 10

    def test_prime_vs_depth_grows(self):
        # ... but grows with depth (Figure 5).
        assert prime_self_label_bits(10, 15) > prime_self_label_bits(2, 15)


class TestMaxBits:
    def test_equation1(self):
        assert prefix1_max_bits(2, 40) == 80.0

    def test_equation2(self):
        assert prefix2_max_bits(3, 16) == pytest.approx(48.0)

    def test_equation3_positive_and_monotone_in_depth(self):
        values = [prime_max_bits(d, 15) for d in range(1, 8)]
        assert all(v > 0 for v in values)
        assert all(a < b for a, b in zip(values, values[1:]))


class TestFigureSeries:
    def test_figure4_prime_flattest(self):
        """At D=2, prime's curve rises the least across fan-out (Figure 4)."""
        series = figure4_series(range(5, 51, 5), depth=2)
        first, last = series[0][1], series[-1][1]
        growth = {name: last[name] - first[name] for name in first}
        assert growth["prime"] < growth["prefix-2"] < growth["prefix-1"]

    def test_figure4_prefix1_worst_at_high_fanout(self):
        _fanout, values = figure4_series([50], depth=2)[0]
        assert values["prefix-1"] > values["prefix-2"] > values["prime"]

    def test_figure5_prefixes_flat_in_depth(self):
        """Figure 5: prefixes are unaffected by depth; prime grows linearly."""
        series = figure5_series(range(0, 11), fanout=15)
        prefix1 = [row[1]["prefix-1"] for row in series]
        prefix2 = [row[1]["prefix-2"] for row in series]
        prime = [row[1]["prime"] for row in series]
        assert len(set(prefix1)) == 1
        assert len(set(prefix2)) == 1
        assert all(a < b for a, b in zip(prime[1:], prime[2:]))

    def test_figure5_crossover(self):
        """Prime beats prefixes at low depth, loses at high depth (F=15)."""
        series = dict(figure5_series([1, 10], fanout=15))
        assert series[1]["prime"] < series[1]["prefix-2"]
        assert series[10]["prime"] > series[10]["prefix-2"]
