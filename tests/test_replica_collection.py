"""ReplicaCollection: bootstrap, replay, resync, and socket shipping."""

import json

import pytest

from repro.durable import (
    DurableCollection,
    collection_fingerprint,
    read_pointer,
    resolve_bootstrap,
)
from repro.durable.recovery import WAL_NAME
from repro.errors import ReplicationError
from repro.replica import (
    ReplicaCollection,
    SocketTransport,
    TailerThread,
    WalShipServer,
)
from repro.xmlkit.parser import parse_document

DOC = "<r><a><a1/><a2/></a><b/><c/></r>"


@pytest.fixture
def primary(tmp_path):
    col = DurableCollection.create(
        tmp_path / "col", [parse_document(DOC)], fsync="never"
    )
    yield col
    col.close()


def _churn(col, count, start=0):
    for i in range(count):
        col.insert_child(col.documents[0], i % 2, tag=f"n{start + i}")


class TestBootstrap:
    def test_bootstraps_from_pointer_snapshot(self, primary):
        _churn(primary, 4)
        primary.checkpoint()
        replica = ReplicaCollection(primary.directory)
        assert replica.applied_seq == 4
        view = replica.read_view()
        assert view.applied_seq == 4 and view.audit() == []

    def test_bootstrap_point_matches_pointer_file(self, primary):
        _churn(primary, 3)
        primary.checkpoint()
        point, _ = resolve_bootstrap(primary.directory)
        pointer = read_pointer(primary.directory)
        assert point.last_seq == pointer["last_seq"] == 3
        assert point.generation == pointer["generation"]

    def test_missing_directory_is_replication_error_material(self, tmp_path):
        from repro.errors import RecoveryError

        with pytest.raises(RecoveryError):
            ReplicaCollection(tmp_path / "nowhere")


class TestConvergence:
    def test_catch_up_is_byte_identical(self, primary):
        replica = ReplicaCollection(primary.directory)
        _churn(primary, 10)
        applied = replica.catch_up()
        assert applied == 10
        assert replica.applied_seq == primary.last_seq
        assert collection_fingerprint(replica.live) == collection_fingerprint(
            primary.live
        )

    def test_batches_replay_atomically(self, primary):
        replica = ReplicaCollection(primary.directory)
        root = primary.documents[0]
        primary.bulk_insert([(root, 0, "x")] * 4)
        primary.bulk_delete([root.children[0]])
        replica.catch_up()
        assert collection_fingerprint(replica.live) == collection_fingerprint(
            primary.live
        )
        # One WAL record per group commit.
        assert replica.applied_seq == 2

    def test_survives_checkpoint_rotation(self, primary):
        replica = ReplicaCollection(primary.directory)
        _churn(primary, 6)
        replica.catch_up()
        primary.checkpoint()  # prunes the log: the file shrinks
        _churn(primary, 3, start=6)
        replica.catch_up()
        assert replica.applied_seq == primary.last_seq == 9
        assert collection_fingerprint(replica.live) == collection_fingerprint(
            primary.live
        )

    def test_views_never_show_half_applied_state(self, primary):
        replica = ReplicaCollection(primary.directory)
        _churn(primary, 5)
        before = replica.read_view()
        replica.catch_up()
        after = replica.read_view()
        # The stale view is immutable and still audit-clean; the new view
        # is a different published version at the new LSN.
        assert before.applied_seq == 0 and before.audit() == []
        assert after.applied_seq == 5 and after.version > before.version

    def test_lag_reports_records_and_bytes(self, primary):
        replica = ReplicaCollection(primary.directory)
        replica.catch_up()
        _churn(primary, 4)
        lag = replica.lag()
        assert lag.record_lag == 4 and lag.byte_lag > 0
        replica.catch_up()
        lag = replica.lag()
        assert lag.record_lag == 0 and lag.byte_lag == 0


class TestResync:
    def test_gap_triggers_snapshot_resync(self, primary):
        replica = ReplicaCollection(primary.directory)
        replica.catch_up()
        # The primary checkpoints twice while the replica is not looking:
        # with two-generation retention, the second checkpoint prunes the
        # log past records the replica never saw.
        _churn(primary, 6)
        primary.checkpoint()
        _churn(primary, 3, start=6)
        primary.checkpoint()
        _churn(primary, 2, start=9)
        replica.catch_up()
        assert replica.resyncs >= 1
        assert replica.applied_seq == primary.last_seq == 11
        assert collection_fingerprint(replica.live) == collection_fingerprint(
            primary.live
        )

    def test_mid_stream_corruption_resyncs_from_snapshot(self, primary):
        replica = ReplicaCollection(primary.directory)
        _churn(primary, 5)
        replica.catch_up()
        primary.checkpoint()  # snapshot now covers seq 5
        _churn(primary, 2, start=5)
        # Flip a byte in the last record, beyond the replica's position.
        wal_path = primary.directory / WAL_NAME
        blob = bytearray(wal_path.read_bytes())
        blob[-3] ^= 0xFF
        wal_path.write_bytes(bytes(blob))
        # First pass: record 6 applies; the damaged record 7 is only a
        # *suspect* torn tail, so nothing is raised and nothing skipped.
        replica.catch_up()
        assert replica.applied_seq == 6 and replica.resyncs == 0
        # The primary keeps writing past the damage: now it is confirmed
        # corruption and the replica re-bootstraps from the checkpoint
        # snapshot instead of crashing or skipping.
        _churn(primary, 1, start=7)
        replica.catch_up()
        assert replica.resyncs >= 1
        assert replica.applied_seq >= 5

    def test_transport_loss_serves_stale_views(self, primary, tmp_path):
        server = WalShipServer(primary.directory / WAL_NAME)
        host, port = server.start()
        replica = ReplicaCollection(
            primary.directory, transport=SocketTransport(host, port)
        )
        _churn(primary, 3)
        replica.catch_up()
        assert replica.applied_seq == 3
        server.stop()  # primary "dies"
        # stop() only closes the listener; drop the replica's live
        # connection too so the next poll must reconnect (and fail).
        replica.transport.close()
        _churn(primary, 2, start=3)
        assert replica.poll() == 0  # absorbed: TRANSIENT, not fatal
        view = replica.read_view()
        assert view.applied_seq == 3 and view.audit() == []
        lag = replica.lag()
        assert lag.primary_seq is None and lag.applied_seq == 3
        replica.close()


class TestSocketShipping:
    def test_socket_round_trip_converges(self, primary):
        server = WalShipServer(primary.directory / WAL_NAME)
        host, port = server.start()
        try:
            replica = ReplicaCollection(
                primary.directory, transport=SocketTransport(host, port)
            )
            _churn(primary, 8)
            replica.catch_up()
            assert replica.applied_seq == 8
            assert collection_fingerprint(
                replica.live
            ) == collection_fingerprint(primary.live)
            replica.close()
        finally:
            server.stop()

    def test_tailer_thread_converges_concurrently(self, primary):
        import time

        replica = ReplicaCollection(primary.directory)
        thread = TailerThread(replica, interval=0.001).start()
        _churn(primary, 30)
        deadline = time.monotonic() + 10.0
        while replica.applied_seq < primary.last_seq and time.monotonic() < deadline:
            time.sleep(0.005)
        thread.stop()
        assert replica.applied_seq == primary.last_seq == 30
        assert collection_fingerprint(replica.live) == collection_fingerprint(
            primary.live
        )

    def test_garbage_server_is_replication_error(self, primary):
        import socket
        import threading

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def answer_garbage():
            conn, _ = listener.accept()
            conn.recv(64)
            conn.sendall(b"\xff" * 20 + b"not a frame")
            conn.close()

        thread = threading.Thread(target=answer_garbage, daemon=True)
        thread.start()
        transport = SocketTransport("127.0.0.1", listener.getsockname()[1])
        with pytest.raises(ReplicationError):
            transport.read(0, 0)
        transport.close()
        listener.close()


class TestReplicationLagType:
    def test_record_lag_none_without_primary(self):
        from repro.replica import ReplicationLag

        lag = ReplicationLag(applied_seq=5, primary_seq=None, byte_lag=0)
        assert lag.record_lag is None
        lag = ReplicationLag(applied_seq=5, primary_seq=9, byte_lag=120)
        assert lag.record_lag == 4
