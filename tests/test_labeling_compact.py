"""Unit tests for the compact ancestry schemes (DKR and FK tunings)."""

import pytest

from repro.datasets.random_tree import (
    RandomTreeBuilder,
    chain_tree,
    perfect_tree,
    star_tree,
)
from repro.errors import LabelingError
from repro.labeling.compact import (
    DahlgaardScheme,
    FraigniaudKormanScheme,
    round_up_family,
)
from repro.labeling.prefix import Bits

SCHEMES = [DahlgaardScheme, FraigniaudKormanScheme]


class TestRoundUpFamily:
    def test_small_lengths_exact(self):
        for length in range(1 << 4):
            exponent, mantissa = round_up_family(length, 4)
            assert (exponent, mantissa) == (0, length)

    def test_rounds_up_never_down(self):
        for mantissa_bits in (2, 3, 5):
            for length in range(1, 500):
                exponent, mantissa = round_up_family(length, mantissa_bits)
                rounded = mantissa << exponent
                assert rounded >= length
                assert mantissa < (1 << mantissa_bits)

    def test_overshoot_bounded_by_ulp(self):
        for mantissa_bits in (2, 3, 5):
            for length in range(1, 2000):
                exponent, mantissa = round_up_family(length, mantissa_bits)
                ulp = 1 << max(0, length.bit_length() - mantissa_bits)
                assert (mantissa << exponent) - length < ulp

    def test_negative_rejected(self):
        with pytest.raises(LabelingError):
            round_up_family(-1, 3)


class TestAncestryCorrectness:
    """Exhaustive ancestry verification against ground-truth tree walks."""

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_paper_tree(self, scheme_cls, paper_tree):
        scheme = scheme_cls().label_tree(paper_tree)
        pairs, mismatches = scheme.check_against_tree()
        assert pairs > 0 and mismatches == 0

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    @pytest.mark.parametrize("seed", range(6))
    def test_random_trees(self, scheme_cls, seed):
        tree = RandomTreeBuilder(seed=seed, max_depth=6, max_fanout=9).build(80)
        scheme = scheme_cls().label_tree(tree)
        pairs, mismatches = scheme.check_against_tree()
        assert pairs == 80 * 79 and mismatches == 0

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_chain(self, scheme_cls):
        """Chains are the all-heavy-edges extreme: a single heavy path."""
        scheme = scheme_cls().label_tree(chain_tree(40))
        assert scheme.check_against_tree()[1] == 0

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_star(self, scheme_cls):
        """Stars are the all-light-but-one extreme: maximal fan-out."""
        scheme = scheme_cls().label_tree(star_tree(60))
        assert scheme.check_against_tree()[1] == 0

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_perfect_tree(self, scheme_cls):
        scheme = scheme_cls().label_tree(perfect_tree(4, 3))
        assert scheme.check_against_tree()[1] == 0

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_single_node(self, scheme_cls):
        from repro.xmlkit.builder import element

        scheme = scheme_cls().label_tree(element("only"))
        assert scheme.check_against_tree() == (0, 0)


class TestLabelLayout:
    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_fixed_width_labels(self, scheme_cls, paper_tree):
        scheme = scheme_cls().label_tree(paper_tree)
        widths = {scheme.label_of(n).length for n in paper_tree.iter_preorder()}
        assert widths == {scheme.label_length}

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_components_round_trip(self, scheme_cls, paper_tree):
        scheme = scheme_cls().label_tree(paper_tree)
        for node in paper_tree.iter_preorder():
            label = scheme.label_of(node)
            point, exponent, mantissa = scheme.label_components(label)
            repacked = (
                (point << (scheme._exp_bits + scheme._mant_bits))
                | (exponent << scheme._mant_bits)
                | mantissa
            )
            assert Bits(repacked, scheme.label_length) == label

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_points_are_distinct(self, scheme_cls, paper_tree):
        scheme = scheme_cls().label_tree(paper_tree)
        points = [
            scheme.label_components(scheme.label_of(n))[0]
            for n in paper_tree.iter_preorder()
        ]
        assert len(points) == len(set(points))
        assert max(points) < scheme.universe

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_width_mismatch_rejected(self, scheme_cls, paper_tree):
        scheme = scheme_cls().label_tree(paper_tree)
        with pytest.raises(LabelingError):
            scheme.label_components(Bits(0, scheme.label_length + 1))

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_universe_stays_linear(self, scheme_cls):
        """The padded universe must stay within a small constant of n —
        that is the whole point of the rounded-interval construction."""
        tree = RandomTreeBuilder(seed=3, max_depth=8, max_fanout=10).build(400)
        scheme = scheme_cls().label_tree(tree)
        assert scheme.universe < 4 * 400


class TestUpdates:
    """The compact schemes are static: updates relabel canonically via the
    base-class defaults, and the labeling must stay correct afterwards."""

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_insert_leaf_relabels_and_stays_correct(self, scheme_cls, paper_tree):
        scheme = scheme_cls().label_tree(paper_tree)
        report = scheme.insert_leaf(paper_tree, tag="late")
        assert report.new_node is not None
        assert scheme.check_against_tree()[1] == 0

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_delete_keeps_survivors_correct(self, scheme_cls, paper_tree):
        scheme = scheme_cls().label_tree(paper_tree)
        victim = paper_tree.children[0]
        dropped = len(list(victim.iter_preorder()))
        before = len(list(scheme.labeled_nodes()))
        scheme.delete(victim)
        assert len(list(scheme.labeled_nodes())) == before - dropped
        assert scheme.check_against_tree()[1] == 0

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_mixed_churn(self, scheme_cls):
        import random

        rng = random.Random(17)
        tree = RandomTreeBuilder(seed=17, max_depth=5, max_fanout=6).build(40)
        scheme = scheme_cls().label_tree(tree)
        for _ in range(15):
            nodes = list(tree.iter_preorder())
            target = rng.choice(nodes)
            if rng.random() < 0.7 or target is tree:
                scheme.insert_leaf(target, tag="n")
            else:
                scheme.delete(target)
        assert scheme.check_against_tree()[1] == 0


class TestTunings:
    def test_fk_narrower_on_shallow_trees(self):
        """On a wide shallow tree FK's lg d mantissa beats DKR's lg lg n."""
        tree = star_tree(2000)
        dkr = DahlgaardScheme().label_tree(tree)
        fk = FraigniaudKormanScheme().label_tree(tree)
        assert fk._mant_bits <= dkr._mant_bits
        assert fk.label_length <= dkr.label_length

    def test_scheme_names(self):
        assert DahlgaardScheme.name == "dkr"
        assert FraigniaudKormanScheme.name == "fk-depth"
