"""Unit tests for the XPath-subset parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.ast import Axis
from repro.query.xpath import parse_query


class TestBasicSteps:
    def test_single_child_step(self):
        query = parse_query("/play")
        assert len(query.steps) == 1
        step = query.steps[0]
        assert (step.axis, step.tag, step.position) == (Axis.CHILD, "play", None)

    def test_descendant_step(self):
        step = parse_query("//act").steps[0]
        assert step.axis == Axis.DESCENDANT

    def test_child_then_descendant(self):
        query = parse_query("/play//act")
        assert [s.axis for s in query.steps] == [Axis.CHILD, Axis.DESCENDANT]
        assert [s.tag for s in query.steps] == ["play", "act"]

    def test_positional_predicate(self):
        step = parse_query("/play//act[4]").steps[1]
        assert step.position == 4

    def test_zero_position_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("/act[0]")

    def test_tag_with_punctuation(self):
        assert parse_query("/x-1.y_z").steps[0].tag == "x-1.y_z"


class TestAxes:
    def test_following_axis(self):
        step = parse_query("/a//Following::b").steps[1]
        assert step.axis == Axis.FOLLOWING
        assert step.from_descendants is True

    def test_axis_after_single_slash_not_expanded(self):
        step = parse_query("/a/Following::b").steps[1]
        assert step.axis == Axis.FOLLOWING
        assert step.from_descendants is False

    def test_axis_names_case_insensitive(self):
        assert parse_query("/a//following::b").steps[1].axis == Axis.FOLLOWING
        assert parse_query("/a//PRECEDING::b").steps[1].axis == Axis.PRECEDING

    def test_sibling_axes(self):
        assert (
            parse_query("/a//Following-Sibling::b[2]").steps[1].axis
            == Axis.FOLLOWING_SIBLING
        )
        assert (
            parse_query("/a//Preceding-Sibling::b").steps[1].axis
            == Axis.PRECEDING_SIBLING
        )

    def test_unknown_axis_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("/a//Sideways::b")

    def test_parent_and_ancestor_axes(self):
        assert parse_query("/a/Parent::b").steps[1].axis == Axis.PARENT
        assert parse_query("/a/Ancestor::b").steps[1].axis == Axis.ANCESTOR

    def test_wildcard_name(self):
        assert parse_query("/a//*").steps[1].tag == "*"


class TestPaperQueries:
    def test_all_nine_parse(self):
        from repro.bench.response import PAPER_QUERIES

        for _name, text in PAPER_QUERIES:
            query = parse_query(text)
            assert query.steps

    def test_q2_structure(self):
        query = parse_query("/play//act[3]//Following::act")
        assert len(query.steps) == 3
        assert query.steps[1].position == 3
        assert query.steps[2].axis == Axis.FOLLOWING

    def test_round_trip_str(self):
        text = "/play//act[3]//Following::act"
        assert str(parse_query(text)).lower() == text.lower()


class TestErrors:
    def test_empty_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("   ")

    def test_missing_leading_slash(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("play//act")

    def test_trailing_garbage(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("/play$$")

    def test_bare_slash(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("/")
