"""Snapshots: byte-exact state capture, corruption detection, atomicity."""

import random

import pytest

from repro.durable.faults import CorruptSnapshotWrite, flip_bit, truncate_file
from repro.durable.snapshot import (
    collection_fingerprint,
    read_snapshot,
    restore_collection,
    snapshot_bytes,
    write_snapshot,
)
from repro.errors import SnapshotCorruptError
from repro.query.live import LiveCollection
from repro.xmlkit.parser import parse_document

DOCS = [
    "<r><a>x</a><b attr='v'><c/><c/></b></r>",
    "<play><act><scene/><scene/></act></play>",
]


def build_collection(churn=12, group_size=5):
    collection = LiveCollection(
        [parse_document(text) for text in DOCS], group_size=group_size
    )
    rng = random.Random(3)
    for _ in range(churn):
        root = collection.documents[rng.randrange(len(collection.documents))]
        nodes = list(root.iter_preorder())
        target = rng.choice(nodes)
        collection.insert_child(target, rng.randint(0, len(target.children)))
    return collection


class TestRoundTrip:
    def test_restore_reproduces_the_fingerprint(self, tmp_path):
        collection = build_collection()
        path = tmp_path / "snap.rpsn"
        write_snapshot(collection, path, last_seq=12)
        state = read_snapshot(path)
        assert state.last_seq == 12
        restored = restore_collection(state)
        assert collection_fingerprint(restored) == collection_fingerprint(collection)

    def test_restore_preserves_future_behaviour(self, tmp_path):
        """The decisive determinism test: a restored collection must make
        the *same future choices* (fresh primes, SC record fills) as the
        original — not merely hold the same current state."""
        collection = build_collection()
        path = tmp_path / "snap.rpsn"
        write_snapshot(collection, path)
        restored = restore_collection(read_snapshot(path))
        rng_a, rng_b = random.Random(9), random.Random(9)
        for source, rng in ((collection, rng_a), (restored, rng_b)):
            for _ in range(15):
                root = source.documents[0]
                nodes = list(root.iter_preorder())
                target = rng.choice(nodes)
                source.insert_child(target, rng.randint(0, len(target.children)))
        assert collection_fingerprint(restored) == collection_fingerprint(collection)
        assert restored.check() and collection.check()

    def test_queries_survive_restore(self, tmp_path):
        collection = build_collection()
        path = tmp_path / "snap.rpsn"
        write_snapshot(collection, path)
        restored = restore_collection(read_snapshot(path))
        for query in ("//c", "/r//b", "//*"):
            assert len(restored.query(query)) == len(collection.query(query))

    def test_none_group_size_round_trips(self, tmp_path):
        collection = build_collection(churn=3, group_size=None)
        path = tmp_path / "snap.rpsn"
        write_snapshot(collection, path)
        restored = restore_collection(read_snapshot(path))
        assert restored.group_size is None
        assert collection_fingerprint(restored) == collection_fingerprint(collection)

    def test_fingerprint_is_content_addressed(self):
        assert collection_fingerprint(build_collection()) == collection_fingerprint(
            build_collection()
        )
        changed = build_collection()
        changed.insert_child(changed.documents[0], 0)
        assert collection_fingerprint(changed) != collection_fingerprint(
            build_collection()
        )


class TestCorruptionDetection:
    def test_every_single_bit_flip_in_a_small_snapshot_is_caught(self, tmp_path):
        collection = LiveCollection([parse_document("<r><a/><b/></r>")])
        path = tmp_path / "snap.rpsn"
        write_snapshot(collection, path)
        blob = path.read_bytes()
        for offset in range(len(blob)):
            for bit in range(8):
                flip_bit(path, offset, bit)
                with pytest.raises(SnapshotCorruptError):
                    read_snapshot(path)
                path.write_bytes(blob)  # restore for the next flip

    def test_random_bit_flips_in_a_large_snapshot_are_caught(self, tmp_path):
        collection = build_collection()
        path = tmp_path / "snap.rpsn"
        write_snapshot(collection, path)
        blob = path.read_bytes()
        rng = random.Random(17)
        for _ in range(80):
            flip_bit(path, rng.randrange(len(blob)), rng.randrange(8))
            with pytest.raises(SnapshotCorruptError):
                read_snapshot(path)
            path.write_bytes(blob)

    def test_every_truncation_point_is_caught(self, tmp_path):
        collection = LiveCollection([parse_document("<r><a/></r>")])
        path = tmp_path / "snap.rpsn"
        write_snapshot(collection, path)
        size = path.stat().st_size
        for cut in range(size):
            truncate_file(path, cut)
            with pytest.raises(SnapshotCorruptError):
                read_snapshot(path)
            write_snapshot(collection, path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(tmp_path / "absent.rpsn")

    def test_wrong_magic_with_valid_crc(self, tmp_path):
        import struct
        import zlib

        path = tmp_path / "fake.rpsn"
        body = b"NOPE" + b"\x01" + b"\x00" * 20
        path.write_bytes(body + struct.pack(">I", zlib.crc32(body)))
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(path)

    def test_injected_corruption_on_the_write_path(self, tmp_path):
        collection = build_collection(churn=3)
        path = tmp_path / "snap.rpsn"
        write_snapshot(
            collection, path, faults=CorruptSnapshotWrite(byte_offset=25, bit=3)
        )
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(path)


class TestAtomicity:
    def test_no_temp_file_survives_a_write(self, tmp_path):
        collection = build_collection(churn=2)
        path = tmp_path / "snap.rpsn"
        write_snapshot(collection, path)
        assert [entry.name for entry in tmp_path.iterdir()] == ["snap.rpsn"]

    def test_rewrite_is_all_or_nothing(self, tmp_path):
        collection = build_collection(churn=2)
        path = tmp_path / "snap.rpsn"
        write_snapshot(collection, path)
        before = path.read_bytes()
        collection.insert_child(collection.documents[0], 0)
        write_snapshot(collection, path)
        after = path.read_bytes()
        assert after != before
        read_snapshot(path)  # still a valid snapshot

    def test_snapshot_bytes_deterministic(self):
        collection = build_collection()
        assert snapshot_bytes(collection) == snapshot_bytes(collection)
