"""Write-ahead log: append/scan round trips, torn tails, pruning."""

import struct
import zlib

import pytest

from repro.durable.faults import TornAppend
from repro.durable.wal import (
    FsyncPolicy,
    WriteAheadLog,
    header_prefix,
    scan_wal,
)
from repro.errors import DurabilityError, WalCorruptError
from repro.obs import metrics


def ops(count):
    return [{"op": "insert_child", "doc": 0, "parent": 0, "index": i, "tag": "x"}
            for i in range(count)]


class TestFsyncPolicy:
    @pytest.mark.parametrize(
        "text,interval",
        [("always", 1), ("never", 0), ("batch:1", 1), ("batch:8", 8)],
    )
    def test_parse(self, text, interval):
        assert FsyncPolicy.parse(text).interval == interval

    @pytest.mark.parametrize("text", ["", "sometimes", "batch:", "batch:0", "batch:-2"])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(DurabilityError):
            FsyncPolicy.parse(text)

    def test_parse_is_idempotent(self):
        policy = FsyncPolicy.parse("batch:3")
        assert FsyncPolicy.parse(policy) is policy

    def test_round_trips_through_str(self):
        for text in ("always", "never", "batch:7"):
            assert str(FsyncPolicy.parse(text)) == text

    def test_due(self):
        assert FsyncPolicy.parse("always").due(1)
        assert not FsyncPolicy.parse("never").due(10_000)
        batch = FsyncPolicy.parse("batch:3")
        assert not batch.due(2)
        assert batch.due(3)


class TestAppendScanRoundTrip:
    def test_records_come_back_verbatim_in_order(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            sequences = [wal.append(op) for op in ops(10)]
        assert sequences == list(range(1, 11))
        scan = scan_wal(path)
        assert [record.op for record in scan.records] == ops(10)
        assert [record.seq for record in scan.records] == sequences
        assert scan.torn_bytes == 0
        assert scan.last_seq == 10

    def test_missing_file_scans_empty(self, tmp_path):
        scan = scan_wal(tmp_path / "absent.log")
        assert scan.records == [] and scan.last_seq == 0

    def test_reopen_resumes_sequence_numbers(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            for op in ops(3):
                wal.append(op)
        with WriteAheadLog(path) as wal:
            assert wal.next_seq == 4
            assert wal.append({"op": "compact"}) == 4
        assert scan_wal(path).last_seq == 4

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(WalCorruptError):
            wal.append({"op": "compact"})

    def test_fsync_policy_counts(self, tmp_path):
        with metrics.collecting() as registry:
            with WriteAheadLog(tmp_path / "wal.log", fsync="batch:4") as wal:
                for op in ops(9):
                    wal.append(op)
            # 9 appends = 2 batch syncs + the close() sync
            counters = registry.snapshot()["counters"]
        assert counters["wal.fsyncs"] == 3


class TestTornTails:
    def test_torn_final_record_is_dropped_then_repaired(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, faults=TornAppend(at=4, keep_bytes=9))
        for op in ops(4):
            try:
                wal.append(op)
            except Exception:
                pass
        scan = scan_wal(path)
        assert len(scan.records) == 3
        assert scan.torn_bytes == 9
        # re-open repairs: the torn bytes are truncated away on disk
        WriteAheadLog(path).close()
        healed = scan_wal(path)
        assert healed.torn_bytes == 0 and len(healed.records) == 3

    @pytest.mark.parametrize("keep", [0, 1, 7, 15, 16, 17])
    def test_every_tear_length_stops_cleanly(self, tmp_path, keep):
        path = tmp_path / f"wal-{keep}.log"
        wal = WriteAheadLog(path, faults=TornAppend(at=3, keep_bytes=keep))
        for op in ops(3):
            try:
                wal.append(op)
            except Exception:
                pass
        assert len(scan_wal(path).records) == 2

    def test_mid_file_bit_flip_shortens_the_trusted_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            for op in ops(6):
                wal.append(op)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        path.write_bytes(bytes(blob))
        scan = scan_wal(path)
        assert len(scan.records) < 6
        assert scan.torn_bytes > 0

    def test_header_damage_is_an_error_not_a_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"op": "compact"})
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0xFF  # magic
        path.write_bytes(bytes(blob))
        with pytest.raises(WalCorruptError):
            scan_wal(path)

    def test_absurd_length_field_is_corruption_not_a_wait(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"op": "compact"})
        # Forge a record claiming a multi-GiB payload with a valid CRC:
        # the scanner must refuse it via the payload cap, not try to read on.
        payload = b"x"
        fake_len = 2**31
        header = struct.pack(
            ">QII", 2, fake_len, zlib.crc32(struct.pack(">QI", 2, fake_len) + payload)
        )
        with open(path, "ab") as handle:
            handle.write(header + payload)
        scan = scan_wal(path)
        assert len(scan.records) == 1
        assert scan.torn_bytes > 0

    def test_sequence_chain_break_stops_the_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"op": "compact"})
        # append a *valid* record with a skipped sequence number
        payload = b'{"op":"compact"}'
        header = struct.pack(
            ">QII", 9, len(payload), zlib.crc32(header_prefix(9, payload))
        )
        with open(path, "ab") as handle:
            handle.write(header + payload)
        assert len(scan_wal(path).records) == 1


class TestMaintenance:
    def test_prune_drops_covered_records_only(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for op in ops(8):
            wal.append(op)
        freed = wal.prune(keep_after_seq=5)
        assert freed > 0
        scan = scan_wal(path)
        assert [record.seq for record in scan.records] == [6, 7, 8]
        # appending continues seamlessly after a prune
        assert wal.append({"op": "compact"}) == 9
        wal.close()
        assert scan_wal(path).last_seq == 9

    def test_prune_noop_when_nothing_covered(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        for op in ops(3):
            wal.append(op)
        assert wal.prune(keep_after_seq=0) == 0
        wal.close()

    def test_reset_restarts_numbering_without_old_records(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for op in ops(4):
            wal.append(op)
        wal.reset(next_seq=42)
        assert wal.append({"op": "compact"}) == 42
        wal.close()
        scan = scan_wal(path)
        assert [record.seq for record in scan.records] == [42]

    def test_reset_refuses_to_go_backwards(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        for op in ops(4):
            wal.append(op)
        with pytest.raises(ValueError):
            wal.reset(next_seq=2)
        wal.close()


class TestBatchCloseFlush:
    """Regression: close() under batch:N must flush the un-synced tail."""

    def test_close_mid_batch_loses_nothing(self, tmp_path):
        path = tmp_path / "wal.log"
        with metrics.collecting() as registry:
            wal = WriteAheadLog(path, fsync="batch:5")
            for op in ops(3):  # 3 < 5: no batch sync has fired yet
                wal.append(op)
            wal.close()
            counters = registry.snapshot()["counters"]
        assert counters["wal.fsyncs"] == 1  # exactly the close() flush
        reopened = WriteAheadLog(path, fsync="batch:5")
        scan = scan_wal(path)
        assert [record.seq for record in scan.records] == [1, 2, 3]
        assert reopened.next_seq == 4
        reopened.close()

    def test_close_failure_still_closes(self, tmp_path):
        class FailingSync:
            def on_append(self, seq, blob):
                return blob

            def after_write(self, seq):
                return None

            def on_sync(self, pending):
                raise OSError("sync died")

            def on_snapshot(self, blob):
                return blob

            def on_snapshot_io(self, path):
                return None

        wal = WriteAheadLog(tmp_path / "wal.log", fsync="never",
                            faults=FailingSync())
        wal._pending = 0  # header write is already durable
        with pytest.raises(OSError):
            wal.close()
        # the object is closed for good, not half-usable
        with pytest.raises(WalCorruptError):
            wal.append({"op": "compact"})
        wal.close()  # idempotent


class TestAppendRollback:
    """A failed append must leave the file exactly as it was (retry-safe)."""

    class FailOnce:
        def __init__(self, site):
            self.site = site
            self.fired = False

        def on_append(self, seq, blob):
            if self.site == "append" and not self.fired:
                self.fired = True
                raise OSError("injected pre-write fault")
            return blob

        def after_write(self, seq):
            if self.site == "after" and not self.fired:
                self.fired = True
                raise OSError("injected post-write fault")

        def on_sync(self, pending):
            if self.site == "sync" and not self.fired:
                self.fired = True
                raise OSError("injected fsync fault")

        def on_snapshot(self, blob):
            return blob

        def on_snapshot_io(self, path):
            return None

    @pytest.mark.parametrize("site", ["append", "after", "sync"])
    def test_retry_after_fault_creates_no_duplicate(self, tmp_path, site):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="always", faults=self.FailOnce(site))
        with pytest.raises(OSError):
            wal.append({"op": "compact"})
        # the failed record's bytes were rolled back...
        assert scan_wal(path).records == []
        # ...so the retry lands as the one-and-only record 1
        assert wal.append({"op": "compact"}) == 1
        wal.close()
        scan = scan_wal(path)
        assert [record.seq for record in scan.records] == [1]

    def test_reopen_repairs_and_rechains(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for op in ops(3):
            wal.append(op)
        # simulate damage behind the handle's back: torn tail on disk
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])
        wal.reopen()
        assert wal.next_seq == 3  # record 3 lost its tail -> rescan trusts 1..2
        assert wal.append({"op": "compact"}) == 3
        wal.close()
        assert [r.seq for r in scan_wal(path).records] == [1, 2, 3]

    def test_reopen_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(WalCorruptError):
            wal.reopen()
