"""Unit tests for the bottom-up prime scheme and the Dewey baseline."""

import pytest

from repro.labeling.dewey import DeweyScheme
from repro.labeling.prime import BottomUpPrimeScheme
from repro.primes.primality import is_prime
from repro.xmlkit.builder import element


class TestBottomUp:
    def test_leaves_get_primes(self, paper_tree):
        scheme = BottomUpPrimeScheme().label_tree(paper_tree)
        for leaf in paper_tree.iter_leaves():
            assert is_prime(scheme.label_of(leaf))

    def test_parent_is_product_of_children(self):
        tree = element("r", element("a"), element("b"))
        scheme = BottomUpPrimeScheme().label_tree(tree)
        a, b = tree.children
        assert scheme.label_of(tree) == scheme.label_of(a) * scheme.label_of(b)

    def test_figure1_property2(self, paper_tree):
        """Property 2: x ancestor of y iff label(x) mod label(y) == 0."""
        scheme = BottomUpPrimeScheme().label_tree(paper_tree)
        a = paper_tree.children[0]
        a1 = a.children[0]
        assert scheme.label_of(a) % scheme.label_of(a1) == 0
        assert scheme.is_ancestor(a, a1)
        assert not scheme.is_ancestor(a1, a)

    def test_single_child_special_handling(self):
        """A one-child parent must not collide with its child."""
        tree = element("r", element("only", element("leaf")))
        scheme = BottomUpPrimeScheme().label_tree(tree)
        only = tree.children[0]
        leaf = only.children[0]
        assert scheme.label_of(only) != scheme.label_of(leaf)
        assert scheme.is_ancestor(only, leaf)

    def test_chain_labels_all_distinct(self):
        from repro.datasets.random_tree import chain_tree

        tree = chain_tree(8)
        scheme = BottomUpPrimeScheme().label_tree(tree)
        labels = [scheme.label_of(n) for n in tree.iter_preorder()]
        assert len(set(labels)) == len(labels)

    def test_matches_ground_truth(self, any_tree):
        scheme = BottomUpPrimeScheme().label_tree(any_tree)
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_leaf_insert_relabels_ancestors(self, paper_tree):
        scheme = BottomUpPrimeScheme().label_tree(paper_tree)
        a = paper_tree.children[0]
        report = scheme.insert_leaf(a)
        # new node + a + root
        assert report.count == 3
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_root_sees_growth_on_deep_insert(self):
        tree = element("r", element("a", element("b")))
        scheme = BottomUpPrimeScheme().label_tree(tree)
        root_before = scheme.label_of(tree)
        scheme.insert_leaf(tree.children[0].children[0])
        assert scheme.label_of(tree) % root_before == 0
        assert scheme.label_of(tree) > root_before

    def test_wrap_insert_stays_correct(self, paper_tree):
        scheme = BottomUpPrimeScheme().label_tree(paper_tree)
        scheme.insert_internal(paper_tree, 0, 2)
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_top_labels_grow_fast(self):
        """The paper's motivation for going top-down: bottom-up roots blow up."""
        from repro.datasets.random_tree import perfect_tree
        from repro.labeling.prime import PrimeScheme

        tree = perfect_tree(3, 3)
        bottom_up = BottomUpPrimeScheme().label_tree(tree)
        top_down = PrimeScheme(reserved_primes=0, power2_leaves=False).label_tree(tree)
        assert bottom_up.max_label_bits() > top_down.max_label_bits()


class TestDewey:
    def test_root_is_empty_tuple(self, paper_tree):
        scheme = DeweyScheme().label_tree(paper_tree)
        assert scheme.label_of(paper_tree) == ()

    def test_components_are_sibling_ordinals(self, paper_tree):
        scheme = DeweyScheme().label_tree(paper_tree)
        a = paper_tree.children[0]
        a2 = a.children[1]
        assert scheme.label_of(a) == (1,)
        assert scheme.label_of(a2) == (1, 2)

    def test_matches_ground_truth(self, any_tree):
        scheme = DeweyScheme().label_tree(any_tree)
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_lexicographic_order_is_document_order(self, any_tree):
        scheme = DeweyScheme().label_tree(any_tree)
        nodes = list(any_tree.iter_preorder())
        labels = [scheme.label_of(n) for n in nodes]
        assert labels == sorted(labels)

    def test_label_bits_counts_components(self):
        scheme = DeweyScheme()
        assert scheme.label_bits(()) == 0
        assert scheme.label_bits((1,)) == 2
        assert scheme.label_bits((3, 12)) == (2 + 1) + (4 + 1)

    def test_updates_via_canonical_relabel(self, paper_tree):
        scheme = DeweyScheme().label_tree(paper_tree)
        report = scheme.insert_leaf(paper_tree, index=0)
        # canonical Dewey shifts every following sibling subtree
        assert report.count == 6
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0
