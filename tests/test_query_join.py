"""Unit + cross-validation tests for the structural join algorithms."""

import pytest

from repro.datasets.random_tree import RandomTreeBuilder
from repro.datasets.shakespeare import play
from repro.labeling.interval import StartEndIntervalScheme, XissIntervalScheme
from repro.labeling.prime import PrimeScheme
from repro.query.join import nested_loop_join, prime_merge_join, stack_tree_join
from repro.xmlkit.builder import element


def canonical(pairs):
    return sorted((id(a), id(d)) for a, d in pairs)


@pytest.fixture
def play_tree():
    return play(seed=4)


class TestNestedLoop:
    def test_simple_pairs(self, paper_tree):
        scheme = XissIntervalScheme().label_tree(paper_tree)
        a = paper_tree.children[0]
        pairs = nested_loop_join(scheme, [paper_tree, a], list(paper_tree.iter_preorder()))
        # root is the ancestor of all 5 others; "a" of its 2 children
        assert len(pairs) == 7

    def test_empty_inputs(self, paper_tree):
        scheme = XissIntervalScheme().label_tree(paper_tree)
        assert nested_loop_join(scheme, [], [paper_tree]) == []
        assert nested_loop_join(scheme, [paper_tree], []) == []

    def test_no_self_pairs(self, paper_tree):
        scheme = XissIntervalScheme().label_tree(paper_tree)
        nodes = list(paper_tree.iter_preorder())
        pairs = nested_loop_join(scheme, nodes, nodes)
        assert all(a is not d for a, d in pairs)


class TestStackTreeJoin:
    @pytest.mark.parametrize("scheme_class", [XissIntervalScheme, StartEndIntervalScheme])
    def test_matches_nested_loop(self, scheme_class, any_tree):
        scheme = scheme_class().label_tree(any_tree)
        nodes = list(any_tree.iter_preorder())
        ancestors = nodes[::2]
        descendants = nodes[::3]
        expected = canonical(nested_loop_join(scheme, ancestors, descendants))
        actual = canonical(stack_tree_join(scheme, ancestors, descendants))
        assert actual == expected

    def test_acts_join_lines(self, play_tree):
        scheme = XissIntervalScheme().label_tree(play_tree)
        acts = play_tree.find_by_tag("ACT")
        lines = play_tree.find_by_tag("LINE")
        pairs = stack_tree_join(scheme, acts, lines)
        assert len(pairs) == len(lines)  # every line has exactly one act

    def test_unsorted_inputs_accepted(self, paper_tree):
        scheme = XissIntervalScheme().label_tree(paper_tree)
        nodes = list(paper_tree.iter_preorder())[::-1]
        pairs = stack_tree_join(scheme, nodes, nodes)
        assert canonical(pairs) == canonical(nested_loop_join(scheme, nodes, nodes))

    def test_rejects_non_interval_scheme(self, paper_tree):
        scheme = PrimeScheme().label_tree(paper_tree)
        with pytest.raises(TypeError):
            stack_tree_join(scheme, [paper_tree], [paper_tree])


class TestPrimeMergeJoin:
    def make_scheme(self, tree):
        return PrimeScheme(reserved_primes=0, power2_leaves=False).label_tree(tree)

    def test_matches_nested_loop(self, any_tree):
        scheme = self.make_scheme(any_tree)
        nodes = list(any_tree.iter_preorder())
        ancestors = nodes[::2]
        descendants = nodes[::3]
        expected = canonical(nested_loop_join(scheme, ancestors, descendants))
        actual = canonical(prime_merge_join(scheme, ancestors, descendants))
        assert actual == expected

    def test_acts_join_speeches(self, play_tree):
        scheme = self.make_scheme(play_tree)
        acts = play_tree.find_by_tag("ACT")
        speeches = play_tree.find_by_tag("SPEECH")
        pairs = prime_merge_join(scheme, acts, speeches)
        assert len(pairs) == len(speeches)

    def test_overlapping_input_sets(self):
        tree = element("r", element("a", element("b", element("c"))))
        scheme = self.make_scheme(tree)
        nodes = list(tree.iter_preorder())
        pairs = prime_merge_join(scheme, nodes, nodes)
        # chain of 4: 3 + 2 + 1 = 6 proper ancestor pairs
        assert len(pairs) == 6

    def test_rejects_non_prime_scheme(self, paper_tree):
        scheme = XissIntervalScheme().label_tree(paper_tree)
        with pytest.raises(TypeError):
            prime_merge_join(scheme, [paper_tree], [paper_tree])


class TestAllJoinsAgree:
    def test_three_way_agreement_on_random_trees(self):
        for seed in range(5):
            tree = RandomTreeBuilder(seed=seed, max_depth=6, max_fanout=5).build(80)
            nodes = list(tree.iter_preorder())
            ancestors, descendants = nodes[::2], nodes[1::2]

            interval = XissIntervalScheme().label_tree(tree)
            baseline = canonical(nested_loop_join(interval, ancestors, descendants))
            assert canonical(stack_tree_join(interval, ancestors, descendants)) == baseline

            prime = PrimeScheme(reserved_primes=0, power2_leaves=False).label_tree(tree)
            assert canonical(prime_merge_join(prime, ancestors, descendants)) == baseline
