"""Tests for the window (pre/post accelerator) evaluation strategy.

Parity is the contract: the window strategy must return byte-identical
rows *in identical order* to the paper-faithful scan evaluation, for
every axis, every scheme, and every Table 2 query — it is a physical
optimization, never a semantic one.  The satellite regression for the
``_seed_context`` doc_ids normalization lives here too.
"""

import pytest

from repro.bench.response import PAPER_QUERIES
from repro.datasets.shakespeare import shakespeare_corpus
from repro.query.engine import QueryEngine
from repro.query.store import LabelStore
from repro.xmlkit.parser import parse_document

DOC = """
<play>
  <title/>
  <act><title/><scene><speech><line/><line/></speech></scene></act>
  <act><scene><speech><line/></speech><speech><line/></speech></scene></act>
</play>
"""

QUERIES = (
    "/play//line",
    "/play/act",
    "/play/act/scene/speech",
    "/act//line",
    "/PLAY//SPEECH/SPEAKER",
    "/PLAY//ACT//LINE",
    "/play//nothing",
    "/play//act[2]//line",                  # positional predicate
    "/line/Parent::speech",                 # parent axis
    "/line/Ancestor::act",                  # ancestor axis
    "/act/Following::speech",               # order axis, plain
    "/act//Following::speech",              # order axis, expanded (Q4 shape)
    "/speech//Preceding::line",             # expanded preceding (Q5 shape)
    "/act/Following-Sibling::act",
    "/scene//Following-Sibling::speech",    # expanded sibling (Q7 shape)
    "/speech/Preceding-Sibling::speech",
    "/SPEECH/LINE",
)


@pytest.fixture(params=["interval", "prime", "prefix-2"])
def store(request):
    documents = [parse_document(DOC)] + shakespeare_corpus(plays=2, seed=55)
    return LabelStore.build(documents, scheme=request.param)


class TestWindowEquivalence:
    def test_identical_rows_and_order(self, store):
        scan = QueryEngine(store, strategy="scan")
        window = QueryEngine(store, strategy="window")
        for query in QUERIES:
            scan_rows = scan.evaluate(query)
            window_rows = window.evaluate(query)
            assert [r.element_id for r in scan_rows] == [
                r.element_id for r in window_rows
            ], query
            assert [r.doc_id for r in scan_rows] == [
                r.doc_id for r in window_rows
            ], query

    def test_paper_queries_identical(self, store):
        scan = QueryEngine(store, strategy="scan")
        window = QueryEngine(store, strategy="window")
        auto = QueryEngine(store, strategy="auto")
        for _name, text in PAPER_QUERIES:
            expected = scan.count(text)
            assert window.count(text) == expected, text
            assert auto.count(text) == expected, text

    def test_auto_and_twig_parity(self, store):
        engines = {
            s: QueryEngine(store, strategy=s) for s in ("scan", "twig", "auto")
        }
        for query in QUERIES:
            expected = [r.element_id for r in engines["scan"].evaluate(query)]
            for name in ("twig", "auto"):
                got = [r.element_id for r in engines[name].evaluate(query)]
                assert got == expected, (name, query)

    def test_text_filter_parity(self):
        documents = [parse_document("<r><a>x</a><a>y</a><b><a>x</a></b></r>")]
        store = LabelStore.build(documents, scheme="prime")
        for strategy in ("scan", "window", "auto"):
            engine = QueryEngine(store, strategy=strategy)
            assert engine.count("/r//a[.='x']") == 2, strategy


class TestWindowDetails:
    def make(self, strategy="window"):
        store = LabelStore.build([parse_document(DOC)], scheme="prime")
        return QueryEngine(store, strategy=strategy)

    def test_results_in_document_order(self):
        window = self.make()
        rows = window.evaluate("/play//line")
        keys = [window.store.ops.order_key(row) for row in rows]
        assert keys == sorted(keys)

    def test_columns_match_identity(self):
        # post = pre + size - 1 - level on every entry (Grust's identity).
        windows = self.make().store.windows
        assert windows is not None
        for doc_id, per_node in windows.columns().items():
            for pre, post, level, size in per_node.values():
                assert post == pre + size - 1 - level, (doc_id, pre)

    def test_window_strategy_survives_missing_index(self):
        engine = self.make()
        expected = engine.count("/play//line")
        engine.store.windows = None
        engine.store._statistics = None
        assert engine.count("/play//line") == expected  # falls back to scan

    def test_doc_ids_restriction(self, subtests=None):
        documents = [parse_document(DOC), parse_document(DOC)]
        store = LabelStore.build(documents, scheme="prime")
        for strategy in ("scan", "window", "auto"):
            engine = QueryEngine(store, strategy=strategy)
            rows = engine.evaluate("/play//line", doc_ids=[1])
            assert rows and all(row.doc_id == 1 for row in rows), strategy


class _MembershipCountingList(list):
    """A doc_ids argument that counts linear membership probes."""

    def __init__(self, items):
        super().__init__(items)
        self.probes = 0

    def __contains__(self, item):  # pragma: no cover - trivial
        self.probes += 1
        return super().__contains__(item)


class TestSeedContextDocIdsRegression:
    """The ``_seed_context`` O(n) list-membership bug (satellite fix).

    Before the fix, a list passed as ``doc_ids`` was probed once per
    candidate row — O(docs x rows) for the DataGuide pre-filter.  The
    engine now normalizes to a set up front, so the caller's list sees
    zero ``in`` probes and results are unchanged for list/set/generator.
    """

    def build(self):
        documents = [parse_document(DOC) for _ in range(4)]
        return LabelStore.build(documents, scheme="interval")

    def test_list_never_probed_linearly(self):
        store = self.build()
        engine = QueryEngine(store, strategy="scan")
        doc_ids = _MembershipCountingList([0, 2])
        rows = engine.evaluate("/play//line", doc_ids=doc_ids)
        assert {row.doc_id for row in rows} == {0, 2}
        assert doc_ids.probes == 0

    def test_list_set_generator_agree(self):
        store = self.build()
        for strategy in ("scan", "window", "auto"):
            engine = QueryEngine(store, strategy=strategy)
            as_list = engine.evaluate("/play//line", doc_ids=[1, 3])
            as_set = engine.evaluate("/play//line", doc_ids={1, 3})
            as_gen = engine.evaluate("/play//line", doc_ids=iter([1, 3]))
            ids = [row.element_id for row in as_list]
            assert [row.element_id for row in as_set] == ids, strategy
            assert [row.element_id for row in as_gen] == ids, strategy
