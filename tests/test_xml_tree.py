"""Unit tests for repro.xmlkit.tree.XmlElement."""

import pytest

from repro.xmlkit.builder import element
from repro.xmlkit.tree import XmlElement


@pytest.fixture
def sample():
    return element(
        "r",
        element("a", element("a1"), element("a2", element("a2x"))),
        element("b"),
    )


class TestBasics:
    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError):
            XmlElement("")

    def test_children_view_is_immutable_tuple(self, sample):
        assert isinstance(sample.children, tuple)

    def test_len_iter_getitem(self, sample):
        assert len(sample) == 2
        assert [c.tag for c in sample] == ["a", "b"]
        assert sample[0].tag == "a"

    def test_is_leaf_is_root(self, sample):
        assert sample.is_root and not sample.is_leaf
        assert sample[1].is_leaf and not sample[1].is_root

    def test_depth_and_root(self, sample):
        a2x = sample[0][1][0]
        assert a2x.depth == 3
        assert a2x.root is sample

    def test_child_index(self, sample):
        assert sample[1].child_index == 1
        with pytest.raises(ValueError):
            sample.child_index

    def test_path(self, sample):
        assert sample[0][1][0].path() == "/r/a/a2/a2x"


class TestMutation:
    def test_append_sets_parent(self, sample):
        new = sample.append(XmlElement("c"))
        assert new.parent is sample
        assert sample[2] is new

    def test_insert_at_position(self, sample):
        new = sample.insert(1, XmlElement("mid"))
        assert [c.tag for c in sample] == ["a", "mid", "b"]
        assert new.child_index == 1

    def test_attached_child_rejected(self, sample):
        with pytest.raises(ValueError):
            sample.append(sample[0][0])

    def test_cycle_rejected(self, sample):
        descendant = sample[0][1]
        with pytest.raises(ValueError):
            descendant.append(sample.detach())

    def test_self_insert_rejected(self, sample):
        with pytest.raises(ValueError):
            sample.insert(0, sample)

    def test_detach(self, sample):
        a = sample[0]
        a.detach()
        assert a.parent is None
        assert [c.tag for c in sample] == ["b"]

    def test_detach_root_is_noop(self, sample):
        assert sample.detach() is sample

    def test_wrap_children(self, sample):
        wrapper = sample.wrap_children("w", 0, 2)
        assert [c.tag for c in sample] == ["w"]
        assert [c.tag for c in wrapper] == ["a", "b"]
        assert wrapper[0].parent is wrapper

    def test_wrap_subrange(self):
        root = element("r", element("x"), element("y"), element("z"))
        root.wrap_children("w", 1, 2)
        assert [c.tag for c in root] == ["x", "w", "z"]

    def test_wrap_bad_range(self, sample):
        with pytest.raises(IndexError):
            sample.wrap_children("w", 1, 5)


class TestTraversal:
    def test_preorder(self, sample):
        assert [n.tag for n in sample.iter_preorder()] == [
            "r", "a", "a1", "a2", "a2x", "b",
        ]

    def test_descendants_excludes_self(self, sample):
        assert [n.tag for n in sample.iter_descendants()] == ["a", "a1", "a2", "a2x", "b"]

    def test_leaves(self, sample):
        assert [n.tag for n in sample.iter_leaves()] == ["a1", "a2x", "b"]

    def test_iter_level(self, sample):
        assert [n.tag for n in sample.iter_level(2)] == ["a1", "a2"]
        assert [n.tag for n in sample.iter_level(0)] == ["r"]

    def test_find_by_tag(self, sample):
        assert len(sample.find_by_tag("a2x")) == 1

    def test_is_ancestor_of(self, sample):
        a2x = sample[0][1][0]
        assert sample.is_ancestor_of(a2x)
        assert sample[0].is_ancestor_of(a2x)
        assert not a2x.is_ancestor_of(sample)
        assert not sample.is_ancestor_of(sample)
        assert not sample[0].is_ancestor_of(sample[1])

    def test_document_position(self, sample):
        assert sample.document_position() == 0
        assert sample[1].document_position() == 5


class TestStatsCopy:
    def test_stats(self, sample):
        stats = sample.stats()
        assert stats.node_count == 6
        assert stats.depth == 3
        assert stats.max_fanout == 2
        assert stats.leaf_count == 3
        assert stats.internal_count == 3

    def test_single_node_stats(self):
        stats = XmlElement("x").stats()
        assert (stats.node_count, stats.depth, stats.max_fanout, stats.leaf_count) == (
            1, 0, 0, 1,
        )

    def test_copy_is_deep_and_detached(self, sample):
        clone = sample[0].copy()
        assert clone.parent is None
        assert clone.structurally_equal(sample[0])
        clone.append(XmlElement("extra"))
        assert not clone.structurally_equal(sample[0])

    def test_structurally_equal_checks_text_and_attrs(self):
        a = XmlElement("t", {"k": "v"}, text="x")
        b = XmlElement("t", {"k": "v"}, text="x")
        assert a.structurally_equal(b)
        b.text = "y"
        assert not a.structurally_equal(b)
