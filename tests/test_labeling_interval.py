"""Unit tests for the interval labeling baselines."""

import pytest

from repro.errors import LabelOverflowError
from repro.labeling.interval import (
    FloatIntervalScheme,
    OrderSizeLabel,
    StartEndIntervalScheme,
    XissIntervalScheme,
)
from repro.xmlkit.builder import element


class TestXissLabels:
    def test_root_label(self, paper_tree):
        scheme = XissIntervalScheme().label_tree(paper_tree)
        label = scheme.label_of(paper_tree)
        assert label == OrderSizeLabel(order=1, size=5)

    def test_orders_are_preorder_ranks(self, paper_tree):
        scheme = XissIntervalScheme().label_tree(paper_tree)
        orders = [scheme.label_of(n).order for n in paper_tree.iter_preorder()]
        assert orders == [1, 2, 3, 4, 5, 6]

    def test_sizes_are_descendant_counts(self, paper_tree):
        scheme = XissIntervalScheme().label_tree(paper_tree)
        a = paper_tree.children[0]
        assert scheme.label_of(a).size == 2

    def test_matches_ground_truth(self, any_tree):
        scheme = XissIntervalScheme().label_tree(any_tree)
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_label_bits(self):
        scheme = XissIntervalScheme()
        assert scheme.label_bits(OrderSizeLabel(order=5, size=2)) == 6
        assert scheme.label_bits(OrderSizeLabel(order=1, size=0)) == 2


class TestXissUpdates:
    def test_leaf_append_relabels_tail(self):
        # root -> a, b, c ; insert under a: b, c orders shift, root/a sizes grow
        tree = element("r", element("a"), element("b"), element("c"))
        scheme = XissIntervalScheme().label_tree(tree)
        report = scheme.insert_leaf(tree.children[0])
        # changed: new node, a (size), root (size), b (order), c (order)
        assert report.count == 5

    def test_relabel_count_grows_with_document(self):
        small = element("r", *[element("x") for _ in range(10)])
        large = element("r", *[element("x") for _ in range(100)])
        small_scheme = XissIntervalScheme().label_tree(small)
        large_scheme = XissIntervalScheme().label_tree(large)
        small_count = small_scheme.insert_leaf(small.children[0]).count
        large_count = large_scheme.insert_leaf(large.children[0]).count
        assert large_count > small_count
        assert large_count >= 100

    def test_insert_as_last_child_of_root_is_cheap(self):
        tree = element("r", element("a"), element("b"))
        scheme = XissIntervalScheme().label_tree(tree)
        report = scheme.insert_leaf(tree)
        # only the new node and the root's size change
        assert report.count == 2

    def test_labels_valid_after_update(self, any_tree):
        scheme = XissIntervalScheme().label_tree(any_tree)
        scheme.insert_leaf(any_tree)
        scheme.insert_internal(any_tree, 0, len(any_tree.children))
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_delete_relabels_nothing(self, paper_tree):
        scheme = XissIntervalScheme().label_tree(paper_tree)
        report = scheme.delete(paper_tree.children[0])
        assert report.count == 0
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0


class TestStartEnd:
    def test_root_interval_covers_document(self, paper_tree):
        scheme = StartEndIntervalScheme().label_tree(paper_tree)
        label = scheme.label_of(paper_tree)
        assert label.start == 1
        assert label.end == 2 * paper_tree.stats().node_count

    def test_matches_ground_truth(self, any_tree):
        scheme = StartEndIntervalScheme().label_tree(any_tree)
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_intervals_nested_or_disjoint(self, paper_tree):
        scheme = StartEndIntervalScheme().label_tree(paper_tree)
        labels = [scheme.label_of(n) for n in paper_tree.iter_preorder()]
        for a in labels:
            for b in labels:
                if a is b:
                    continue
                nested = (a.start < b.start and b.end < a.end) or (
                    b.start < a.start and a.end < b.end
                )
                disjoint = a.end < b.start or b.end < a.start
                assert nested or disjoint


class TestFloatInterval:
    def test_matches_ground_truth(self, any_tree):
        scheme = FloatIntervalScheme().label_tree(any_tree)
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_midpoint_insert_relabels_only_new_node(self, paper_tree):
        scheme = FloatIntervalScheme().label_tree(paper_tree)
        report = scheme.insert_leaf(paper_tree, index=1)
        assert report.count == 1
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_mantissa_exhaustion_triggers_full_relabel(self):
        tree = element("r", element("a"), element("b"))
        scheme = FloatIntervalScheme(mantissa_bits=4)
        scheme.label_tree(tree)
        for _ in range(20):
            scheme.insert_leaf(tree, index=1)
        assert scheme.full_relabels > 0
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_try_insert_raises_instead_of_relabeling(self):
        tree = element("r", element("a"))
        scheme = FloatIntervalScheme(mantissa_bits=3)
        scheme.label_tree(tree)
        with pytest.raises(LabelOverflowError):
            for _ in range(30):
                scheme.try_insert_leaf(tree, index=1)
        assert scheme.full_relabels == 0

    def test_bad_mantissa_rejected(self):
        with pytest.raises(ValueError):
            FloatIntervalScheme(mantissa_bits=0)
