"""Framework tests: baseline lifecycle, reporters, CLI, repo self-check."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineError,
    lint_source,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.cli import repo_root, run_lint
from repro.analysis.engine import lint_contexts
from repro.analysis.context import context_from_source

BAD_ORDER = "def debug(x):\n    print(x)\n"  # R9 under src/repro/order/


def _report(source=BAD_ORDER, rel="src/repro/order/bad.py", baseline=None):
    return lint_source(source, rel, baseline=baseline)


# ---------------------------------------------------------------------------
# Baseline: add, absorb, expire
# ---------------------------------------------------------------------------


def test_baseline_absorbs_known_findings(tmp_path):
    raw = _report()
    assert raw.exit_code == 1
    baseline = Baseline.from_findings(raw.findings)
    path = tmp_path / "baseline.json"
    baseline.save(path)

    cooked = _report(baseline=Baseline.load(path))
    assert cooked.exit_code == 0
    assert cooked.findings == []
    assert len(cooked.baselined) == 1
    assert cooked.baselined[0].baselined


def test_baseline_does_not_absorb_new_findings():
    baseline = Baseline.from_findings(_report().findings)
    two = "def debug(x):\n    print(x)\n    print(x + 1)\n"
    report = _report(source=two, baseline=baseline)
    # One occurrence grandfathered (same fingerprint), the second is new…
    # except both print() findings share rule+path+message, so the multiset
    # semantics absorb exactly one and keep one active.
    assert len(report.baselined) == 1
    assert len(report.findings) == 1
    assert report.exit_code == 1


def test_baseline_expires_fixed_findings(tmp_path):
    baseline = Baseline.from_findings(_report().findings)
    clean = _report(source="def ok(x):\n    return x\n", baseline=baseline)
    assert clean.findings == []
    assert len(clean.stale_baseline) == 1
    assert clean.exit_code == 0  # stale entries warn, they don't fail

    # --update-baseline semantics: rebuild from what is actually live.
    refreshed = Baseline.from_findings(clean.findings + clean.baselined)
    assert len(refreshed) == 0


def test_baseline_round_trip_and_validation(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.from_findings(_report().findings).save(path)
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    assert payload["findings"][0]["rule"] == "R9"
    assert "line" not in payload["findings"][0]  # line-free fingerprints

    assert len(Baseline.load(tmp_path / "missing.json")) == 0
    (tmp_path / "bad.json").write_text("{\"version\": 99}")
    with pytest.raises(BaselineError):
        Baseline.load(tmp_path / "bad.json")


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


def test_text_reporter_shape():
    text = render_text(_report())
    assert "src/repro/order/bad.py:2:5: R9 error:" in text
    assert text.strip().endswith("across 1 file(s)")


def test_json_reporter_shape():
    payload = json.loads(render_json(_report()))
    assert payload["tool"] == "repro-lint"
    assert payload["summary"]["active"] == 1
    assert payload["summary"]["exit_code"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "R9"
    assert finding["path"] == "src/repro/order/bad.py"
    assert finding["line"] == 2


def test_sarif_schema_shape():
    sarif = json.loads(render_sarif(_report()))
    assert sarif["version"] == "2.1.0"
    assert sarif["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = sarif["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert {f"R{n}" for n in range(1, 11)} <= set(rule_ids)
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["fullDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in {"error", "warning", "note"}
    (result,) = run["results"]
    assert result["ruleId"] == "R9"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/order/bad.py"
    assert location["region"]["startLine"] == 2


def test_sarif_marks_suppressions():
    source = "def debug(x):\n    print(x)  # repro: ignore[R9] -- fixture\n"
    sarif = json.loads(render_sarif(_report(source=source)))
    (result,) = sarif["runs"][0]["results"]
    assert result["suppressions"][0]["kind"] == "inSource"
    assert result["suppressions"][0]["justification"] == "fixture"


# ---------------------------------------------------------------------------
# Self-check: the repo itself lints clean, and violations exit non-zero
# ---------------------------------------------------------------------------


def test_repo_lints_clean():
    report = run_lint()
    assert report.findings == [], "\n".join(f.render() for f in report.findings)
    assert report.exit_code == 0
    # Every suppression in the tree carries its justification.
    assert all(f.justification for f in report.suppressed)
    # The committed baseline holds no stale entries.
    assert report.stale_baseline == []


def test_repo_root_detection():
    root = repo_root()
    assert (root / "src" / "repro").is_dir()
    assert (root / "analysis-baseline.json").is_file()


def test_injected_violation_fails_cli(tmp_path):
    bad = tmp_path / "src" / "repro" / "order" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(BAD_ORDER)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(bad), "--no-baseline"],
        capture_output=True,
        text=True,
        cwd=repo_root(),
        env={"PYTHONPATH": str(repo_root() / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "R9" in proc.stdout


def test_cli_lint_clean_tree_exit_zero(tmp_path):
    out = tmp_path / "lint.sarif"
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "lint",
            "--format", "sarif", "--output", str(out),
        ],
        capture_output=True,
        text=True,
        cwd=repo_root(),
        env={"PYTHONPATH": str(repo_root() / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    sarif = json.loads(out.read_text())
    assert sarif["runs"][0]["tool"]["driver"]["name"] == "repro-lint"


def test_lint_contexts_counts_files():
    contexts = [
        context_from_source("x = 1\n", "src/repro/order/a.py"),
        context_from_source("y = 2\n", "src/repro/order/b.py"),
    ]
    report = lint_contexts(contexts)
    assert report.files_checked == 2
    assert report.findings == []
