"""Fixture tests for rules R1–R13: each must trigger and suppress.

Every fixture is an in-memory snippet linted under a *virtual* repo path
(rules decide applicability from the path), with a ``{S}`` placeholder
on the offending line.  Formatted empty it must raise exactly the
expected rule; formatted with an ``# repro: ignore[...] -- reason``
directive the same snippet must come back clean-with-one-suppression.
"""

import pytest

from repro.analysis import lint_source
from repro.analysis.engine import SUPPRESSION_RULE


def _lint(source, rel):
    return lint_source(source, rel)


# (rule, virtual path, source with {S} on the offending line)
TRIGGERS = [
    (
        "R1",
        "src/repro/query/bad.py",
        "def hack(node):\n    node.label = 99{S}\n",
    ),
    (
        "R1",
        "src/repro/labeling/prime.py",
        "def hack(self, key, label):\n    self._labels[key] = label{S}\n",
    ),
    (
        "R2",
        "src/repro/durable/bad.py",
        "def hack(system):\n    system._congruences[7] = 3{S}\n",
    ),
    (
        "R3",
        "src/repro/order/bad.py",
        "from repro.durable.wal import WriteAheadLog{S}\n",
    ),
    (
        "R3",
        "src/repro/labeling/bad.py",
        "from repro.obs import metrics, audit{S}\n",
    ),
    (
        "R3",
        "src/repro/xmlkit/bad.py",
        "import repro.bench{S}\n",
    ),
    (
        "R4",
        "src/repro/resilient/bad.py",
        "import random\n\ndef roll():\n    return random.random(){S}\n",
    ),
    (
        "R4",
        "src/repro/durable/bad.py",
        "import time\n\ndef stamp():\n    return time.time(){S}\n",
    ),
    (
        "R4",
        "src/repro/query/bad.py",
        "from random import choice{S}\n",
    ),
    (
        "R5",
        "src/repro/durable/bad.py",
        "def risky():\n    try:\n        work()\n"
        "    except Exception:{S}\n        pass\n",
    ),
    (
        "R5",
        "src/repro/resilient/bad.py",
        "def risky():\n    try:\n        work()\n"
        "    except:{S}\n        result = None\n",
    ),
    (
        "R6",
        "src/repro/resilient/bad.py",
        "def sneak(self, op):\n    self.durable.wal.append(op){S}\n",
    ),
    (
        "R7",
        "src/repro/query/bad.py",
        "def collect(items=[]):{S}\n    return items\n",
    ),
    (
        "R8",
        "src/repro/order/bad.py",
        "class Table:\n    def insert_row(self, row):{S}\n"
        "        self.rows += [row]\n",
    ),
    (
        "R9",
        "src/repro/order/bad.py",
        "def debug(x):\n    print(x){S}\n",
    ),
    (
        "R10",
        "src/repro/durable/bad.py",
        "import os\n\ndef persist(handle):\n    os.fsync(handle.fileno()){S}\n",
    ),
    (
        "R10",
        "src/repro/resilient/bad.py",
        "def persist(handle):\n    handle.flush(){S}\n",
    ),
    (
        "R11",
        "src/repro/bench/bad.py",
        "from repro.query.window import WindowIndex{S}\n",
    ),
    (
        "R11",
        "src/repro/bench/bad2.py",
        "def sneak(self, row):\n"
        "    self.windows.apply_insert(row, None, None){S}\n",
    ),
    (
        "R11",
        "src/repro/resilient/bad.py",
        "def sneak(self, doc, node, label):\n"
        "    self.engine.store.insert_row(doc, node, label){S}\n",
    ),
    (
        "R12",
        "src/repro/durable/bad.py",
        "import threading{S}\n",
    ),
    (
        "R12",
        "src/repro/query/bad.py",
        "from concurrent.futures import ThreadPoolExecutor{S}\n",
    ),
    (
        "R13",
        "src/repro/durable/bad.py",
        "import multiprocessing{S}\n",
    ),
    (
        "R13",
        "src/repro/resilient/bad.py",
        "from subprocess import Popen{S}\n",
    ),
    (
        "R13",
        "src/repro/replica/bad.py",
        "import os\n\ndef clone():\n    return os.fork(){S}\n",
    ),
]

IDS = [f"{rule}-{path.rsplit('/', 2)[-2]}" for rule, path, _ in TRIGGERS]


@pytest.mark.parametrize("rule,rel,template", TRIGGERS, ids=IDS)
def test_rule_triggers(rule, rel, template):
    report = _lint(template.format(S=""), rel)
    assert [f.rule for f in report.findings] == [rule], report.findings
    assert report.exit_code == 1
    finding = report.findings[0]
    assert finding.path == rel
    assert finding.line >= 1 and finding.message


@pytest.mark.parametrize("rule,rel,template", TRIGGERS, ids=IDS)
def test_rule_suppresses(rule, rel, template):
    directive = f"  # repro: ignore[{rule}] -- fixture justification"
    report = _lint(template.format(S=directive), rel)
    assert report.findings == [], report.findings
    assert report.exit_code == 0
    assert len(report.suppressed) == 1
    assert report.suppressed[0].justification == "fixture justification"


# ---------------------------------------------------------------------------
# Negative fixtures: the sanctioned pattern for each rule stays clean.
# ---------------------------------------------------------------------------

CLEAN = [
    # R1: _set_label is the sanctioned write path; base.py owns the maps.
    ("src/repro/order/good.py", "def ok(scheme, node, p):\n    scheme._set_label(node, p)\n"),
    ("src/repro/labeling/base.py", "def ok(self, key, label):\n    self._labels[key] = label\n"),
    # R2: the SC layer itself may touch residue state.
    ("src/repro/order/sc_table.py", "def ok(system):\n    system._congruences[7] = 3\n"),
    # R3: the metrics facade is the sanctioned core-layer import.
    ("src/repro/order/good.py", "from repro.obs import metrics\n"),
    # R3 applies only to the four core packages.
    ("src/repro/durable/good.py", "from repro.resilient.policy import RetryPolicy\n"),
    # R4: seeded RNG and monotonic clocks are the sanctioned forms.
    (
        "src/repro/resilient/good.py",
        "import random\nimport time\n\ndef ok(seed):\n"
        "    rng = random.Random(seed)\n    t = time.perf_counter()\n"
        "    return rng, t\n",
    ),
    # R4: exhibits/datasets are exempt (they stamp wall-clock timings).
    ("src/repro/bench/good.py", "import time\n\ndef ok():\n    return time.time()\n"),
    # R5: re-raising or signalling handlers are fine.
    (
        "src/repro/durable/good.py",
        "def ok():\n    try:\n        work()\n    except Exception:\n        raise\n",
    ),
    (
        "src/repro/durable/good2.py",
        "def ok():\n    try:\n        work()\n    except Exception:\n"
        "        metrics.incr('x')\n",
    ),
    # R6: the durable write path owns WAL appends; sync is not an append.
    ("src/repro/durable/collection.py", "def ok(self, op):\n    self.wal.append(op)\n"),
    ("src/repro/resilient/good.py", "def ok(self):\n    self.durable.wal.sync()\n"),
    # R7: immutable defaults are fine.
    ("src/repro/query/good.py", "def ok(items=()):\n    return items\n"),
    # R8: metric-emitting and forwarding mutators are fine; private too.
    (
        "src/repro/order/good.py",
        "class T:\n    def insert_row(self, row):\n"
        "        self.rows += [row]\n        metrics.incr('t.inserts')\n",
    ),
    (
        "src/repro/order/good2.py",
        "class T:\n    def insert_row(self, row):\n"
        "        return self.table.insert_record(row)\n",
    ),
    (
        "src/repro/order/good3.py",
        "class T:\n    def _insert_row(self, row):\n        self.rows += [row]\n",
    ),
    # R9: the CLI and benches may print.
    ("src/repro/cli.py", "def ok(x):\n    print(x)\n"),
    ("src/repro/bench/good.py", "def ok(x):\n    print(x)\n"),
    # R10: the WAL policy layer owns fsync; flush-with-args is not I/O flush.
    (
        "src/repro/durable/wal.py",
        "import os\n\ndef ok(handle):\n    handle.flush()\n"
        "    os.fsync(handle.fileno())\n",
    ),
    # R11: the store owns the WindowIndex; live owns the patch hooks; the
    # engine may import the entry types it binary-searches.
    (
        "src/repro/query/store.py",
        "def ok(self, row, parent, prev):\n"
        "    self.windows.apply_insert(row, parent, prev)\n",
    ),
    (
        "src/repro/query/live.py",
        "def ok(self, doc, node, label):\n"
        "    self.engine.store.insert_row(doc, node, label)\n",
    ),
    ("src/repro/query/engine.py", "from repro.query.window import WindowEntry\n"),
    # R11 matches store-ish receivers only: an unrelated table is fine.
    ("src/repro/resilient/good2.py", "def ok(self, row):\n    self.table.insert_row(row)\n"),
    # R12: the replication layer and the MVCC publish path own threading.
    ("src/repro/replica/runtime.py", "import threading\n"),
    ("src/repro/replica/good.py", "from concurrent.futures import ThreadPoolExecutor\n"),
    ("src/repro/query/live.py", "import threading\n"),
    # R13: the sharding layer owns process spawning; os.kill is not a spawn.
    ("src/repro/shard/supervisor.py", "import multiprocessing\n"),
    (
        "src/repro/shard/worker.py",
        "import os\n\ndef die():\n    os._exit(70)\n",
    ),
    (
        "src/repro/durable/good3.py",
        "import os\nimport signal\n\ndef ok(pid):\n    os.kill(pid, signal.SIGTERM)\n",
    ),
]


@pytest.mark.parametrize(
    "rel,source", CLEAN, ids=[f"clean-{i}" for i in range(len(CLEAN))]
)
def test_sanctioned_patterns_stay_clean(rel, source):
    report = _lint(source, rel)
    assert report.findings == [], report.findings


def test_naked_suppression_raises_sup_and_keeps_finding():
    source = "def debug(x):\n    print(x)  # repro: ignore[R9]\n"
    report = _lint(source, "src/repro/order/bad.py")
    rules = sorted(f.rule for f in report.findings)
    assert rules == ["R9", SUPPRESSION_RULE]
    assert report.exit_code == 1
    assert not report.suppressed


def test_own_line_directive_covers_next_code_line():
    source = (
        "def debug(x):\n"
        "    # repro: ignore[R9] -- demo CLI helper, output is the point,\n"
        "    # wrapped over two comment lines\n"
        "    print(x)\n"
    )
    report = _lint(source, "src/repro/order/bad.py")
    assert report.findings == []
    assert len(report.suppressed) == 1


def test_directive_for_other_rule_does_not_suppress():
    source = "def debug(x):\n    print(x)  # repro: ignore[R4] -- wrong rule\n"
    report = _lint(source, "src/repro/order/bad.py")
    assert [f.rule for f in report.findings] == ["R9"]
