"""Unit tests for the benchmark harness plumbing (ResultTable)."""

import pytest

from repro.bench.harness import ResultTable


class TestResultTable:
    def make(self):
        table = ResultTable(title="T", columns=("k", "a", "b"), note="n")
        table.add_row("x", 1, 2.5)
        table.add_row("y", 3, 4.0)
        return table

    def test_add_row_validates_width(self):
        table = ResultTable(title="T", columns=("k", "v"))
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_column_access(self):
        table = self.make()
        assert table.column("a") == [1, 3]
        assert table.column("k") == ["x", "y"]

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            self.make().column("zzz")

    def test_as_dicts(self):
        assert self.make().as_dicts()[0] == {"k": "x", "a": 1, "b": 2.5}

    def test_to_text_contains_everything(self):
        rendered = self.make().to_text()
        assert "T" in rendered
        assert "2.50" in rendered  # float formatting
        assert "note: n" in rendered

    def test_to_text_alignment(self):
        lines = self.make().to_text().splitlines()
        header = lines[2]
        assert header.startswith("k")

    def test_to_chart_renders_bars(self):
        chart = self.make().to_chart(width=10)
        assert "#" in chart

    def test_chart_on_empty_table_falls_back(self):
        table = ResultTable(title="E", columns=("k", "v"))
        assert table.to_chart() == table.to_text()

    def test_str_is_text(self):
        table = self.make()
        assert str(table) == table.to_text()

    def test_zero_peak_chart(self):
        table = ResultTable(title="Z", columns=("k", "v"))
        table.add_row("x", 0)
        assert "|" in table.to_chart()


class TestExperimentTables:
    """Smoke + shape tests for every exhibit generator, on small inputs."""

    def test_figure3(self):
        from repro.bench.models import figure3_table

        table = figure3_table(count=100, sample_every=50)
        assert table.column("n")[0] == 1
        actual = table.column("actual bits")
        estimated = table.column("estimated bits")
        assert all(abs(a - e) <= 2 for a, e in zip(actual, estimated))

    def test_figure4_shape(self):
        from repro.bench.models import figure4_table

        table = figure4_table(fanouts=[5, 50])
        growth = {
            name: table.column(name)[-1] - table.column(name)[0]
            for name in ("Prefix-1", "Prefix-2", "Prime")
        }
        assert growth["Prime"] < growth["Prefix-2"] < growth["Prefix-1"]

    def test_figure5_shape(self):
        from repro.bench.models import figure5_table

        table = figure5_table(depths=[0, 5, 10])
        prime = table.column("Prime")
        assert prime[0] < prime[1] < prime[2]
        assert len(set(table.column("Prefix-1"))) == 1

    def test_table1_counts(self):
        from repro.bench.spaces import table1_table

        table = table1_table()
        assert table.column("max # of nodes") == [
            41, 125, 340, 1110, 2495, 2686, 4834, 6636, 10052,
        ]

    def test_figure13_optimizations_reduce_size(self):
        from repro.bench.spaces import figure13_table

        table = figure13_table(datasets=("D3", "D5"))
        for row in table.as_dicts():
            assert row["Opt3"] <= row["Opt2"]
            assert row["Opt2"] <= row["Original"]

    def test_figure14_shape(self):
        from repro.bench.spaces import figure14_table

        table = figure14_table(datasets=("D4", "D7"))
        by_name = {row["dataset"]: row for row in table.as_dicts()}
        # the paper's two headline cases: prime wins the wide D4,
        # prefix wins the deep D7
        assert by_name["D4"]["Prime"] < by_name["D4"]["Prefix-2"]
        assert by_name["D7"]["Prefix-2"] < by_name["D7"]["Prime"]
        # interval is the most compact on the deep dataset (its size depends
        # only on N; on the depth-2 D4 the prime scheme actually undercuts it)
        assert by_name["D7"]["Interval"] <= by_name["D7"]["Prime"]
        assert by_name["D7"]["Interval"] <= by_name["D7"]["Prefix-2"]

    def test_figure16_shape(self):
        from repro.bench.updates import figure16_table

        table = figure16_table(sizes=[1000, 3000])
        assert table.column("prime") == [2, 2]
        assert table.column("prefix-2") == [1, 1]
        interval = table.column("interval")
        assert interval[0] >= 900 and interval[1] >= interval[0]

    def test_figure17_shape(self):
        from repro.bench.updates import figure17_table

        table = figure17_table(sizes=[1000, 3000])
        for row in table.as_dicts():
            assert row["interval"] >= row["# nodes"] * 0.5
            assert row["prime"] < row["interval"]
            assert row["prefix-2"] < row["interval"]

    def test_figure18_shape(self):
        from repro.bench.updates import figure18_table

        table = figure18_table()
        assert len(table.rows) == 5
        for row in table.as_dicts():
            # prime's SC-grouped cost sits far below full relabeling
            assert row["prime"] * 3 < row["interval"]
            assert row["prime"] * 3 < row["prefix-2"]

    def test_table2_and_figure15_small_corpus(self):
        from repro.bench.response import figure15_table, table2_table, build_query_corpus

        corpus = build_query_corpus(plays=3, replicate=2, seed=42)
        counts = table2_table(corpus)
        assert all(isinstance(v, int) for v in counts.column("# of nodes retrieved"))
        assert counts.column("# of nodes retrieved")[-1] > 0  # Q9 retrieves plenty
        timing = figure15_table(corpus, repeats=1)
        for scheme in ("Interval", "Prime", "Prefix-2"):
            assert all(t >= 0 for t in timing.column(scheme))
