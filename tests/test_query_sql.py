"""Unit tests for the illustrative SQL translation."""

import pytest

from repro.errors import QueryEvaluationError
from repro.query.sql import to_sql


class TestToSql:
    def test_prime_descendant_uses_mod(self):
        sql = to_sql("/play//act", scheme="prime")
        assert "MOD(" in sql
        assert "e0.tag = 'play'" in sql and "e1.tag = 'act'" in sql

    def test_interval_uses_range_comparisons(self):
        sql = to_sql("/play//act", scheme="interval")
        assert ".ord" in sql and ".size" in sql
        assert "MOD(" not in sql

    def test_prefix_uses_udf(self):
        sql = to_sql("/play//act", scheme="prefix-2")
        assert "check_prefix(" in sql

    def test_sibling_axis_prime_uses_parent_label_identity(self):
        sql = to_sql("/act//Following-Sibling::speech", scheme="prime")
        assert "self_label" in sql and "sc_order(" in sql

    def test_position_rendered_as_comment(self):
        sql = to_sql("/play//act[4]", scheme="interval")
        assert "position() = 4" in sql

    def test_unknown_scheme_rejected(self):
        with pytest.raises(QueryEvaluationError):
            to_sql("/a", scheme="dewey")

    def test_custom_table_name(self):
        sql = to_sql("/a/b", scheme="prime", table="labels")
        assert "FROM labels e0, labels e1" in sql

    def test_all_paper_queries_render_for_all_schemes(self):
        from repro.bench.response import PAPER_QUERIES

        for scheme in ("prime", "interval", "prefix-2"):
            for _name, text in PAPER_QUERIES:
                sql = to_sql(text, scheme=scheme)
                assert sql.startswith("SELECT") and sql.endswith(";")
