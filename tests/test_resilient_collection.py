"""The resilient serving layer: retries, degraded mode, probe/resync."""

import pytest

from repro.durable import DurableCollection, collection_fingerprint, recover
from repro.durable.wal import scan_wal
from repro.errors import (
    CapacityError,
    DeadlineExceededError,
    DegradedModeError,
    DurabilityError,
    RetryExhaustedError,
)
from repro.resilient import (
    CLOSED,
    OPEN,
    BreakerPolicy,
    ChaosInjector,
    ResilientCollection,
    RetryPolicy,
    TransientIOError,
)
from repro.resilient.chaos import ALL_SITES
from repro.xmlkit.parser import parse_document

DOC = "<a><b/><c><d/></c></a>"


class FlakyDisk(ChaosInjector):
    """Fails the first ``failures`` injection opportunities, then heals."""

    def __init__(self, failures, sites=None):
        super().__init__(rate=0.0, seed=0, sites=sites, sleep=lambda _s: None)
        self.remaining = failures

    def _maybe_fail(self, site, detail):
        if site not in self.sites:
            return
        if self.remaining > 0:
            self.remaining -= 1
            self.injected[site] += 1
            raise TransientIOError(f"flaky: {detail}")


class DeadDisk(ChaosInjector):
    """Fails every injection opportunity until ``healed`` is set."""

    def __init__(self):
        super().__init__(rate=0.0, seed=0, sleep=lambda _s: None)
        self.healed = False

    def _maybe_fail(self, site, detail):
        if not self.healed:
            self.injected[site] += 1
            raise TransientIOError(f"dead: {detail}")


def make(tmp_path, faults=None, retry=None, breaker=None, degraded_mode="buffer",
         clock=None, name="col"):
    now = {"t": 0.0}
    the_clock = clock if clock is not None else (lambda: now["t"])
    collection = ResilientCollection.create(
        tmp_path / name,
        [parse_document(DOC)],
        faults=faults,
        retry=retry or RetryPolicy(base_delay=0.0, max_delay=0.0),
        breaker=breaker or BreakerPolicy(failure_threshold=3, cooldown_seconds=10.0),
        degraded_mode=degraded_mode,
        clock=the_clock,
        sleep=lambda _s: None,
    )
    return collection, now


class TestRetries:
    def test_transient_faults_are_retried_to_success(self, tmp_path):
        flaky = FlakyDisk(failures=2)
        collection, _ = make(tmp_path, faults=flaky)
        report = collection.insert_child(collection.documents[0], 0)
        assert report.total_cost >= 0
        assert collection.retries == 2
        assert collection.breaker.state == CLOSED
        assert not collection.degraded

    def test_retried_appends_never_duplicate_records(self, tmp_path):
        # The ambiguous write: bytes landed, acknowledgement did not.
        flaky = FlakyDisk(failures=3, sites=frozenset({"after"}))
        collection, _ = make(
            tmp_path, faults=flaky, breaker=BreakerPolicy(failure_threshold=50)
        )
        for i in range(5):
            collection.insert_child(collection.documents[0], 0, tag=f"t{i}")
        collection.close()
        scan = scan_wal(tmp_path / "col" / "wal.log")
        seqs = [record.seq for record in scan.records]
        assert seqs == sorted(set(seqs)) == [1, 2, 3, 4, 5]

    def test_faulty_run_recovers_byte_identical_to_fault_free_twin(
        self, tmp_path
    ):
        flaky = FlakyDisk(failures=6)
        faulty, _ = make(
            tmp_path,
            faults=flaky,
            retry=RetryPolicy(max_attempts=10, base_delay=0.0, max_delay=0.0),
            breaker=BreakerPolicy(failure_threshold=50),
            name="faulty",
        )
        clean, _ = make(tmp_path, name="clean")
        for col in (faulty, clean):
            for i in range(8):
                col.insert_child(col.documents[0], 0, tag=f"t{i}")
            col.close()
        recovered = recover(tmp_path / "faulty")
        assert collection_fingerprint(recovered.collection) == (
            collection_fingerprint(clean.live)
        )

    def test_exhausted_retries_raise_with_the_final_fault_chained(
        self, tmp_path
    ):
        dead = DeadDisk()
        collection, _ = make(
            tmp_path,
            faults=dead,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0),
            breaker=BreakerPolicy(failure_threshold=50),
        )
        with pytest.raises(RetryExhaustedError) as info:
            collection.insert_child(collection.documents[0], 0)
        assert isinstance(info.value.__cause__, TransientIOError)

    def test_capacity_errors_are_not_retried(self, tmp_path):
        collection, _ = make(tmp_path)
        attempts = []

        def exhausted():
            attempts.append(1)
            raise CapacityError("order too big", hint="compact()")

        with pytest.raises(CapacityError):
            collection._mutate("register", exhausted, None)
        assert len(attempts) == 1  # exactly one attempt, no retries
        assert collection.retries == 0
        assert collection.fault_counts["capacity"] == 1
        assert collection.breaker.state == CLOSED  # capacity never trips it


class TestDegradedMode:
    def _trip(self, collection):
        with pytest.raises(Exception):
            collection.insert_child(collection.documents[0], 0)

    def test_breaker_trip_enters_buffered_degraded_mode(self, tmp_path):
        dead = DeadDisk()
        collection, _ = make(tmp_path, faults=dead)
        # threshold 3 < max_attempts 4: the breaker opens mid-retry and the
        # operation is acknowledged from memory instead of erroring.
        report = collection.insert_child(collection.documents[0], 0)
        assert report is not None
        assert collection.degraded
        assert collection.buffered == 1
        assert collection.breaker.state == OPEN

    def test_queries_still_answer_while_degraded(self, tmp_path):
        dead = DeadDisk()
        collection, _ = make(tmp_path, faults=dead)
        collection.insert_child(collection.documents[0], 0, tag="x")
        assert collection.degraded
        assert collection.count("//x") == 1
        assert collection.count("//b") == 1
        assert collection.degraded_queries == 2
        assert collection.check()

    def test_mutations_keep_buffering_while_degraded(self, tmp_path):
        dead = DeadDisk()
        collection, _ = make(tmp_path, faults=dead)
        for i in range(4):
            collection.insert_child(collection.documents[0], 0, tag=f"t{i}")
        assert collection.buffered == 4
        assert collection.count("//*") == 4 + 4  # originals + buffered

    def test_fail_fast_mode_rejects_mutations(self, tmp_path):
        dead = DeadDisk()
        collection, _ = make(tmp_path, faults=dead, degraded_mode="fail_fast")
        self._trip(collection)
        assert collection.degraded
        with pytest.raises(DegradedModeError):
            collection.insert_child(collection.documents[0], 0)
        assert collection.count("//b") == 1  # queries unaffected

    def test_checkpoint_is_refused_while_degraded(self, tmp_path):
        dead = DeadDisk()
        collection, _ = make(tmp_path, faults=dead)
        collection.insert_child(collection.documents[0], 0)
        with pytest.raises(DegradedModeError):
            collection.checkpoint()

    def test_unknown_degraded_mode_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make(tmp_path, degraded_mode="shrug")


class TestProbeAndResync:
    def test_probe_waits_for_the_cooldown(self, tmp_path):
        dead = DeadDisk()
        collection, now = make(tmp_path, faults=dead)
        collection.insert_child(collection.documents[0], 0)
        assert collection.degraded
        dead.healed = True
        now["t"] = 5.0  # cooldown is 10s: too early, still degraded
        collection.insert_child(collection.documents[0], 0)
        assert collection.degraded
        assert collection.buffered == 2

    def test_successful_probe_resyncs_and_resumes_logging(self, tmp_path):
        dead = DeadDisk()
        collection, now = make(tmp_path, faults=dead)
        collection.insert_child(collection.documents[0], 0, tag="lost")
        dead.healed = True
        now["t"] = 20.0
        collection.insert_child(collection.documents[0], 0, tag="found")
        assert not collection.degraded
        assert collection.buffered == 0
        assert collection.breaker.state == CLOSED
        # post-probe, everything served while degraded is durable again
        collection.close()
        recovered = recover(tmp_path / "col")
        assert collection_fingerprint(recovered.collection) == (
            collection_fingerprint(collection.live)
        )

    def test_failed_probe_reopens_the_breaker(self, tmp_path):
        dead = DeadDisk()
        collection, now = make(tmp_path, faults=dead)
        collection.insert_child(collection.documents[0], 0)
        now["t"] = 20.0  # cooldown elapsed, but the disk is still dead
        collection.insert_child(collection.documents[0], 0)
        assert collection.degraded
        assert collection.probe_failures == 1
        assert collection.breaker.state == OPEN
        assert collection.breaker.times_opened == 2

    def test_resync_covers_both_retained_generations(self, tmp_path):
        # A fallback to the older snapshot generation must never resurrect
        # pre-degraded state.
        dead = DeadDisk()
        collection, now = make(tmp_path, faults=dead)
        collection.insert_child(collection.documents[0], 0, tag="deg")
        dead.healed = True
        now["t"] = 20.0
        collection.insert_child(collection.documents[0], 0, tag="post")
        from repro.durable.recovery import list_generations, snapshot_path
        from repro.durable.snapshot import read_snapshot, restore_collection

        generations = list_generations(tmp_path / "col")
        assert len(generations) == 2
        for generation in generations:
            state = read_snapshot(snapshot_path(tmp_path / "col", generation))
            restored = restore_collection(state)
            assert restored.count("//deg") == 1


class TestDeadline:
    def test_deadline_converts_retries_into_a_typed_error(self, tmp_path):
        dead = DeadDisk()
        now = {"t": 0.0}

        def slow_clock():
            now["t"] += 2.0  # every look at the clock costs 2s
            return now["t"]

        collection, _ = make(
            tmp_path,
            faults=dead,
            retry=RetryPolicy(max_attempts=10, base_delay=0.0, max_delay=0.0,
                              deadline_seconds=5.0),
            breaker=BreakerPolicy(failure_threshold=50),
            clock=slow_clock,
        )
        with pytest.raises(DeadlineExceededError) as info:
            collection.insert_child(collection.documents[0], 0)
        assert isinstance(info.value.__cause__, TransientIOError)
        assert collection.deadline_exceeded == 1


class TestHealthAndLifecycle:
    def test_health_report_shape(self, tmp_path):
        flaky = FlakyDisk(failures=1)
        collection, _ = make(tmp_path, faults=flaky)
        collection.insert_child(collection.documents[0], 0)
        report = collection.health()
        assert report["state"] == "ok"
        assert report["breaker"]["state"] == CLOSED
        assert report["retries"] == 1
        assert report["faults"]["transient"] == 1
        assert report["chaos"]["total"] == 1
        assert report["last_seq"] == 1

    def test_health_reflects_degraded_state(self, tmp_path):
        dead = DeadDisk()
        collection, _ = make(tmp_path, faults=dead)
        collection.insert_child(collection.documents[0], 0)
        report = collection.health()
        assert report["state"] == "degraded"
        assert report["breaker"]["state"] == OPEN
        assert report["degraded"]["buffered"] == 1

    def test_close_drains_with_retries(self, tmp_path):
        flaky = FlakyDisk(failures=1, sites=frozenset({"sync"}))
        collection, _ = make(tmp_path, faults=flaky)
        collection.close()  # one injected sync fault, retried internally
        assert collection.retries == 1
        with pytest.raises(DurabilityError):
            collection.insert_child(collection.documents[0], 0)

    def test_context_manager_closes(self, tmp_path):
        with make(tmp_path)[0] as collection:
            collection.insert_child(collection.documents[0], 0)
        with pytest.raises(DurabilityError):
            collection.checkpoint()

    def test_open_round_trips(self, tmp_path):
        collection, _ = make(tmp_path)
        collection.insert_child(collection.documents[0], 0, tag="kept")
        collection.close()
        reopened = ResilientCollection.open(tmp_path / "col")
        assert reopened.count("//kept") == 1
        assert reopened.health()["state"] == "ok"
        reopened.close()


class TestChaosInjector:
    def test_spec_round_trip(self):
        chaos = ChaosInjector.from_spec(
            "rate=0.25,seed=9,slow=0.5,delay=0.001,sites=append+sync"
        )
        assert chaos.rate == 0.25
        assert chaos.seed == 9
        assert chaos.slow_rate == 0.5
        assert chaos.sites == frozenset({"append", "sync"})

    def test_empty_spec_disables_chaos(self):
        assert ChaosInjector.from_spec("") is None
        assert ChaosInjector.from_spec("  ") is None

    @pytest.mark.parametrize("spec", ["rate=lots", "unknown=1", "sites=disk"])
    def test_bad_specs_are_loud(self, spec):
        with pytest.raises(ValueError):
            ChaosInjector.from_spec(spec)

    def test_same_seed_injects_identically(self, tmp_path):
        def run(name):
            chaos = ChaosInjector(rate=0.2, seed=42, sleep=lambda _s: None)
            collection = ResilientCollection.create(
                tmp_path / name,
                [parse_document(DOC)],
                faults=chaos,
                retry=RetryPolicy(max_attempts=12, base_delay=0.0,
                                  max_delay=0.0),
                breaker=BreakerPolicy(failure_threshold=100),
                sleep=lambda _s: None,
            )
            for i in range(10):
                collection.insert_child(collection.documents[0], 0, tag=f"t{i}")
            collection.close()
            return dict(chaos.injected)

        assert run("one") == run("two")

    def test_stalls_call_the_sleep_hook(self):
        naps = []
        chaos = ChaosInjector(rate=0.0, slow_rate=1.0, slow_seconds=0.25,
                              seed=0, sleep=naps.append)
        chaos.on_sync(0)
        assert naps == [0.25]
        assert chaos.stalls == 1

    def test_all_sites_have_hooks(self):
        # Every advertised site must actually be reachable through a hook.
        chaos = ChaosInjector(rate=1.0, seed=0, sleep=lambda _s: None)
        with pytest.raises(TransientIOError):
            chaos.on_append(1, b"blob")
        with pytest.raises(TransientIOError):
            chaos.after_write(1)
        with pytest.raises(TransientIOError):
            chaos.on_sync(0)
        with pytest.raises(TransientIOError):
            chaos.on_snapshot_io("snap")
        assert chaos.total_injected == len(ALL_SITES)
