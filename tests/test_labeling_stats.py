"""Unit tests for the label-space statistics module."""

import pytest

from repro.datasets.niagara import build_dataset
from repro.labeling.interval import XissIntervalScheme
from repro.labeling.prefix import Prefix2Scheme
from repro.labeling.prime import PrimeScheme
from repro.labeling.stats import LabelSpaceReport, compare_space, label_space_report


def labeled_prime(tree):
    scheme = PrimeScheme(reserved_primes=0, power2_leaves=False)
    scheme.label_tree(tree)
    return scheme


class TestLabelSpaceReport:
    def test_basic_fields(self, paper_tree):
        report = label_space_report(labeled_prime(paper_tree))
        assert report.scheme == "prime"
        assert report.node_count == 6
        assert report.max_bits >= report.median_bits >= 1
        assert report.total_bits >= report.max_bits + (report.node_count - 1)

    def test_mean_between_min_and_max(self, paper_tree):
        report = label_space_report(labeled_prime(paper_tree))
        assert 1 <= report.mean_bits <= report.max_bits

    def test_histogram_counts_every_node(self, paper_tree):
        report = label_space_report(labeled_prime(paper_tree), bucket_bits=4)
        assert sum(report.histogram.values()) == report.node_count
        assert all(bucket % 4 == 0 for bucket in report.histogram)

    def test_fixed_cost_is_width_times_count(self, paper_tree):
        report = label_space_report(labeled_prime(paper_tree))
        assert report.fixed_column_bytes == ((report.max_bits + 7) // 8) * 6

    def test_varint_no_larger_than_fixed_on_skewed_data(self):
        from repro.datasets.random_tree import chain_tree

        scheme = labeled_prime(chain_tree(25))
        report = label_space_report(scheme)
        assert report.varint_column_bytes < report.fixed_column_bytes

    def test_padding_ratio_at_least_one_for_uniform(self, paper_tree):
        report = label_space_report(labeled_prime(paper_tree))
        assert report.fixed_overhead_ratio >= 1.0

    def test_unlabeled_scheme_rejected(self):
        with pytest.raises(ValueError):
            label_space_report(PrimeScheme())

    def test_bad_bucket_rejected(self, paper_tree):
        with pytest.raises(ValueError):
            label_space_report(labeled_prime(paper_tree), bucket_bits=0)


class TestCompareSpace:
    def test_tabulates_all_schemes(self):
        tree = build_dataset("D3")
        table = compare_space(
            tree,
            [
                XissIntervalScheme,
                Prefix2Scheme,
                lambda: PrimeScheme(reserved_primes=0, power2_leaves=False),
            ],
        )
        assert table.column("scheme") == ["interval", "prefix-2", "prime"]
        assert all(value > 0 for value in table.column("max bits"))
        assert all(value >= 1.0 for value in table.column("padding x"))
