"""Tests reproducing the paper's worked examples, figure by figure.

Every number the paper prints in Sections 3–4 is asserted here: the
Figure 2 top-down labels, the Figure 9 SC value 29243, the Figure 10
two-record table (1523 and 6), and the Figure 11/12 update equations.
"""

import pytest

from repro.labeling.prime import PrimeScheme
from repro.order.sc_table import SCTable
from repro.primes.crt import solve_congruences
from repro.xmlkit.builder import element


class TestFigure2TopDownLabels:
    def test_product_structure(self):
        """Figure 2's defining example: the node labeled 10 has parent-label
        2 and self-label 5."""
        tree = element("r", element("a", element("x"), element("y")))
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=False)
        scheme.label_tree(tree)
        a = tree.children[0]
        y = a.children[1]
        label = scheme.label_of(y)
        assert label.value == 10
        assert label.self_label == 5
        assert label.parent_value == scheme.label_of(a).value == 2


class TestFigure9SingleSCValue:
    """Self-labels 2,3,5,7,11,13 with orders 1..6 -> SC = 29243."""

    def setup_method(self):
        self.table = SCTable(group_size=None)
        for prime, order in [(2, 1), (3, 2), (5, 3), (7, 4), (11, 5), (13, 6)]:
            self.table.register(prime, order)

    def test_sc_value(self):
        assert self.table.records[0].sc == 29243

    def test_paper_example_order_lookup(self):
        """'The order number for the node whose self-label is 5 is 3, that
        is, 29243 mod 5.'"""
        assert 29243 % 5 == 3
        assert self.table.order_of(5) == 3

    def test_all_orders_recoverable(self):
        assert self.table.orders() == {2: 1, 3: 2, 5: 3, 7: 4, 11: 5, 13: 6}


class TestFigure10GroupedTable:
    """Two SC values: the first five nodes (SC=1523), the sixth alone (SC=6)."""

    def test_grouping_and_values(self):
        table = SCTable(group_size=5)
        for prime, order in [(2, 1), (3, 2), (5, 3), (7, 4), (11, 5), (13, 6)]:
            table.register(prime, order)
        assert len(table) == 2
        first, second = table.records
        assert first.sc == 1523
        assert first.max_prime == 11
        assert second.sc == 6
        assert second.max_prime == 13


class TestFigure11And12Update:
    """Insert a node with self-label 17 at order 3; the paper's equations."""

    def make_updated_table(self):
        table = SCTable(group_size=5)
        for prime, order in [(2, 1), (3, 2), (5, 3), (7, 4), (11, 5), (13, 6)]:
            table.register(prime, order)
        touched, overflowed = table.shift_orders_from(3)
        assert overflowed == []
        table.register(17, 3)
        return table, touched

    def test_second_record_equations(self):
        """x mod 13 = 7 and x mod 17 = 3 (the paper's first system)."""
        table, _touched = self.make_updated_table()
        second = table.records[1]
        assert second.sc % 13 == 7
        assert second.sc % 17 == 3
        assert second.max_prime == 17  # "update it to 17"

    def test_first_record_equations(self):
        """x mod 2=1, x mod 3=2, x mod 5=4, x mod 7=5, x mod 11=6."""
        table, _touched = self.make_updated_table()
        first = table.records[0]
        expected = solve_congruences([2, 3, 5, 7, 11], [1, 2, 4, 5, 6])
        assert first.sc == expected
        for modulus, residue in [(2, 1), (3, 2), (5, 4), (7, 5), (11, 6)]:
            assert first.sc % modulus == residue

    def test_update_cost_is_two_records(self):
        """Both records were rewritten — far fewer 'relabels' than the six
        order numbers that changed."""
        table, touched = self.make_updated_table()
        assert touched == 2
        assert table.orders() == {2: 1, 3: 2, 5: 4, 7: 5, 11: 6, 13: 7, 17: 3}


class TestSection41WorkedExample:
    def test_p_345_i_123_gives_58(self):
        """'Given a list of prime numbers P = [3, 4, 5], and a list of
        integers I = [1, 2, 3] ... there exists a number x = 58.'"""
        assert solve_congruences([3, 4, 5], [1, 2, 3]) == 58
