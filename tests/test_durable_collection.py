"""DurableCollection: log-before-apply wiring, checkpoints, retention."""

import pytest

from repro.durable import (
    CrashBeforeFsync,
    DurableCollection,
    InjectedCrash,
    collection_fingerprint,
    scan_wal,
)
from repro.durable.recovery import WAL_NAME, list_generations, snapshot_path
from repro.errors import DurabilityError, OrderingError, QueryEvaluationError
from repro.obs import metrics
from repro.xmlkit.parser import parse_document

DOC = "<r><a><a1/><a2/></a><b/><c/></r>"


@pytest.fixture
def collection(tmp_path):
    col = DurableCollection.create(tmp_path / "col", [parse_document(DOC)])
    yield col
    col.close()


class TestCreateOpen:
    def test_create_lays_down_snapshot_and_wal(self, tmp_path):
        col = DurableCollection.create(tmp_path / "col", [parse_document(DOC)])
        col.close()
        assert list_generations(tmp_path / "col") == [1]
        assert (tmp_path / "col" / WAL_NAME).exists()

    def test_create_refuses_an_existing_collection(self, tmp_path):
        DurableCollection.create(tmp_path / "col", [parse_document(DOC)]).close()
        with pytest.raises(DurabilityError):
            DurableCollection.create(tmp_path / "col", [parse_document(DOC)])

    def test_open_round_trips_state(self, tmp_path):
        col = DurableCollection.create(tmp_path / "col", [parse_document(DOC)])
        col.insert_child(col.documents[0], 1, tag="mid")
        fingerprint = collection_fingerprint(col.live)
        col.close()
        reopened = DurableCollection.open(tmp_path / "col")
        assert collection_fingerprint(reopened.live) == fingerprint
        assert reopened.last_recovery is not None
        assert reopened.last_seq == 1
        reopened.close()

    def test_wal_behind_snapshot_never_reissues_sequence_numbers(self, tmp_path):
        """fsync='never' can lose a WAL tail that a later checkpoint's
        snapshot still covers; new appends must start past the snapshot."""
        col = DurableCollection.create(
            tmp_path / "col", [parse_document(DOC)], fsync="never"
        )
        for _ in range(5):
            col.insert_child(col.documents[0], 0)
        col.checkpoint()  # snapshot covers seq 5, wal.sync() happened
        col.close()
        # Simulate the page-cache loss: rewrite the WAL as empty.
        wal_path = tmp_path / "col" / WAL_NAME
        wal_path.write_bytes(wal_path.read_bytes()[:5])
        reopened = DurableCollection.open(tmp_path / "col", fsync="never")
        assert reopened.last_seq == 5
        reopened.insert_child(reopened.documents[0], 0)
        fingerprint = collection_fingerprint(reopened.live)
        assert scan_wal(wal_path).records[0].seq == 6
        reopened.close()
        # ... and that new record actually replays.
        final = DurableCollection.open(tmp_path / "col")
        assert collection_fingerprint(final.live) == fingerprint
        final.close()


class TestLoggedMutations:
    def test_each_mutation_appends_one_record(self, collection):
        root = collection.documents[0]
        collection.insert_child(root, 0)
        collection.insert_before(root.children[1])
        collection.insert_after(root.children[1])
        collection.delete(root.children[0])
        collection.add_document(parse_document("<x><y/></x>"))
        collection.compact()
        assert collection.last_seq == 6
        kinds = [record.op["op"] for record in scan_wal(collection.wal.path).records]
        assert kinds == [
            "insert_child",
            "insert_before",
            "insert_after",
            "delete",
            "add_document",
            "compact",
        ]

    def test_rejected_operations_log_nothing(self, collection):
        root = collection.documents[0]
        with pytest.raises(OrderingError):
            collection.insert_child(root, 99)
        with pytest.raises(OrderingError):
            collection.insert_before(root)
        with pytest.raises(OrderingError):
            collection.delete(root)
        with pytest.raises(QueryEvaluationError):
            collection.insert_child(parse_document("<zz/>"), 0)  # foreign node
        with pytest.raises(OrderingError):
            collection.add_document(root.children[0])  # attached root
        assert scan_wal(collection.wal.path).records == []
        assert collection.last_seq == 0

    def test_crash_between_log_and_apply_is_consistent(self, tmp_path):
        col = DurableCollection.create(
            tmp_path / "col",
            [parse_document(DOC)],
            faults=CrashBeforeFsync(at=3),
        )
        col.insert_child(col.documents[0], 0)
        col.insert_child(col.documents[0], 1)
        with pytest.raises(InjectedCrash):
            col.insert_child(col.documents[0], 2)
        # the record hit the file (pre-fsync) but was never applied in
        # memory; recovery replays it — "applied" wins over "acknowledged"
        reopened = DurableCollection.open(tmp_path / "col")
        assert reopened.last_seq == 3
        reopened.close()

    def test_mutations_after_close_raise(self, tmp_path):
        col = DurableCollection.create(tmp_path / "col", [parse_document(DOC)])
        col.close()
        with pytest.raises(DurabilityError):
            col.insert_child(col.documents[0], 0)
        with pytest.raises(DurabilityError):
            col.checkpoint()

    def test_queries_pass_through(self, collection):
        assert collection.count("//a1") == 1
        collection.insert_child(collection.documents[0].children[0], 0, tag="a1")
        assert collection.count("//a1") == 2
        assert collection.check()


class TestCheckpointing:
    def test_checkpoint_retains_exactly_two_generations(self, collection):
        for round_number in range(4):
            collection.insert_child(collection.documents[0], 0)
            generation = collection.checkpoint()
            assert generation == round_number + 2
        assert list_generations(collection.directory) == [4, 5]

    def test_checkpoint_prunes_covered_wal_records(self, collection):
        for _ in range(6):
            collection.insert_child(collection.documents[0], 0)
        collection.checkpoint()  # gen 2 at seq 6; gen 1 (seq 0) still retained
        assert len(scan_wal(collection.wal.path).records) == 6
        for _ in range(4):
            collection.insert_child(collection.documents[0], 0)
        collection.checkpoint()  # gen 3 at seq 10; gen 1 dropped, prune <= 6
        remaining = scan_wal(collection.wal.path).records
        assert [record.seq for record in remaining] == [7, 8, 9, 10]

    def test_checkpoint_counters(self, tmp_path):
        with metrics.collecting() as registry:
            col = DurableCollection.create(tmp_path / "col", [parse_document(DOC)])
            col.insert_child(col.documents[0], 0)
            col.checkpoint()
            col.close()
            counters = registry.snapshot()["counters"]
        assert counters["durable.checkpoints"] == 1
        assert counters["snapshot.writes"] == 2  # create + checkpoint
        assert counters["wal.appends"] == 1

    def test_context_manager_closes(self, tmp_path):
        with DurableCollection.create(
            tmp_path / "col", [parse_document(DOC)]
        ) as col:
            col.insert_child(col.documents[0], 0)
        with pytest.raises(DurabilityError):
            col.insert_child(col.documents[0], 0)
