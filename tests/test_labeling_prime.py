"""Unit tests for the top-down prime number scheme — the paper's core."""

import pytest

from repro.labeling.prime import PrimeLabel, PrimeScheme
from repro.primes.primality import is_prime
from repro.xmlkit.builder import element


def make_scheme(**kwargs):
    defaults = dict(reserved_primes=0, power2_leaves=False)
    defaults.update(kwargs)
    return PrimeScheme(**defaults)


class TestPrimeLabel:
    def test_parent_value(self):
        assert PrimeLabel(value=30, self_label=5).parent_value == 6

    def test_invalid_self_label_rejected(self):
        with pytest.raises(ValueError):
            PrimeLabel(value=10, self_label=3)
        with pytest.raises(ValueError):
            PrimeLabel(value=10, self_label=0)


class TestOriginalScheme:
    """The un-optimized top-down scheme (Figure 2)."""

    def test_root_label_is_one(self, paper_tree):
        scheme = make_scheme().label_tree(paper_tree)
        assert scheme.label_of(paper_tree) == PrimeLabel(value=1, self_label=1)

    def test_every_nonroot_self_label_is_prime(self, paper_tree):
        scheme = make_scheme().label_tree(paper_tree)
        for node in paper_tree.iter_descendants():
            assert is_prime(scheme.label_of(node).self_label)

    def test_self_labels_distinct(self, any_tree):
        scheme = make_scheme().label_tree(any_tree)
        self_labels = [
            scheme.label_of(n).self_label for n in any_tree.iter_descendants()
        ]
        assert len(set(self_labels)) == len(self_labels)

    def test_label_is_product_down_the_path(self, paper_tree):
        scheme = make_scheme().label_tree(paper_tree)
        a = paper_tree.children[0]
        a1 = a.children[0]
        assert (
            scheme.label_of(a1).value
            == scheme.label_of(a).value * scheme.label_of(a1).self_label
        )

    def test_figure2_shape_labels(self):
        """Top-down labels on the Figure 2 shape: primes in preorder."""
        tree = element("r", element("a", element("x"), element("y")), element("b"))
        scheme = make_scheme().label_tree(tree)
        a, b = tree.children
        x, y = a.children
        assert scheme.label_of(a).value == 2
        assert scheme.label_of(x).value == 2 * 3
        assert scheme.label_of(y).value == 2 * 5
        assert scheme.label_of(b).value == 7

    def test_matches_ground_truth(self, any_tree):
        scheme = make_scheme().label_tree(any_tree)
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_divisibility_is_the_ancestor_test(self, paper_tree):
        scheme = make_scheme().label_tree(paper_tree)
        a = paper_tree.children[0]
        a1 = a.children[0]
        assert scheme.label_of(a1).value % scheme.label_of(a).value == 0
        b = paper_tree.children[1]
        assert scheme.label_of(b).value % scheme.label_of(a).value != 0

    def test_label_not_ancestor_of_itself(self, paper_tree):
        scheme = make_scheme().label_tree(paper_tree)
        label = scheme.label_of(paper_tree.children[0])
        assert not scheme.is_ancestor_label(label, label)


class TestOpt1ReservedPrimes:
    def test_top_level_nodes_get_smallest_primes(self):
        tree = element(
            "r",
            element("a", element("x", element("deep"))),
            element("b", element("y")),
        )
        scheme = PrimeScheme(reserved_primes=8, power2_leaves=False)
        scheme.label_tree(tree)
        a, b = tree.children
        assert scheme.label_of(a).self_label == 2
        assert scheme.label_of(b).self_label == 3
        # non-top-level internals draw from beyond the reserved pool (p_9 = 23)
        x = a.children[0]
        assert scheme.label_of(x).self_label >= 23

    def test_still_correct(self, any_tree):
        scheme = PrimeScheme(reserved_primes=16, power2_leaves=False)
        scheme.label_tree(any_tree)
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0


class TestOpt2PowerOfTwoLeaves:
    def test_leaves_get_powers_of_two(self, book_tree):
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=True)
        scheme.label_tree(book_tree)
        title, author1, author2, author3 = book_tree.children
        assert scheme.label_of(title).self_label == 2
        assert scheme.label_of(author1).self_label == 4
        assert scheme.label_of(author2).self_label == 8
        assert scheme.label_of(author3).self_label == 16

    def test_leaf_counters_are_per_parent(self):
        tree = element("r", element("a", element("l1")), element("b", element("l2")))
        scheme = PrimeScheme(power2_leaves=True)
        scheme.label_tree(tree)
        l1 = tree.children[0].children[0]
        l2 = tree.children[1].children[0]
        assert scheme.label_of(l1).self_label == 2
        assert scheme.label_of(l2).self_label == 2

    def test_property3_even_labels_never_ancestors(self, book_tree):
        scheme = PrimeScheme(power2_leaves=True).label_tree(book_tree)
        author1 = book_tree.children[1]
        author2 = book_tree.children[2]
        # author2's label is divisible by author1's, but author1 is even.
        assert scheme.label_of(author2).value % scheme.label_of(author1).value == 0
        assert not scheme.is_ancestor(author1, author2)

    def test_matches_ground_truth(self, any_tree):
        scheme = PrimeScheme(reserved_primes=8, power2_leaves=True)
        scheme.label_tree(any_tree)
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_labels_unique(self, any_tree):
        scheme = PrimeScheme(reserved_primes=8, power2_leaves=True)
        scheme.label_tree(any_tree)
        values = [scheme.label_of(n).value for n in any_tree.iter_preorder()]
        assert len(set(values)) == len(values)

    def test_leaf_threshold_falls_back_to_primes(self):
        wide = element("r", *[element("x") for _ in range(40)])
        scheme = PrimeScheme(power2_leaves=True, leaf_threshold_bits=8)
        scheme.label_tree(wide)
        self_labels = [scheme.label_of(n).self_label for n in wide.children]
        powers = [s for s in self_labels if s & (s - 1) == 0]
        odd_primes = [s for s in self_labels if s % 2 and is_prime(s)]
        assert len(powers) == 7  # 2^1 .. 2^7 within 8 bits
        assert len(odd_primes) == 33
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            PrimeScheme(leaf_threshold_bits=1)


class TestDynamicUpdates:
    def test_original_leaf_insert_relabels_only_new_node(self, paper_tree):
        scheme = make_scheme().label_tree(paper_tree)
        report = scheme.insert_leaf(paper_tree.children[1])
        assert report.count == 1
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_opt2_insert_under_leaf_relabels_two(self, paper_tree):
        """The paper's Figure 16 narrative: leaf parent upgrades to a prime."""
        scheme = PrimeScheme(power2_leaves=True).label_tree(paper_tree)
        leaf = paper_tree.children[1]  # "b" is a leaf
        assert scheme.label_of(leaf).self_label % 2 == 0
        report = scheme.insert_leaf(leaf)
        assert report.count == 2
        assert is_prime(scheme.label_of(leaf).self_label)
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_opt2_insert_under_internal_relabels_one(self, paper_tree):
        scheme = PrimeScheme(power2_leaves=True).label_tree(paper_tree)
        internal = paper_tree.children[0]  # "a" has children
        report = scheme.insert_leaf(internal)
        assert report.count == 1

    def test_new_node_gets_fresh_prime(self, paper_tree):
        scheme = make_scheme().label_tree(paper_tree)
        before = {scheme.label_of(n).self_label for n in paper_tree.iter_preorder()}
        report = scheme.insert_leaf(paper_tree)
        new_self = scheme.label_of(report.new_node).self_label
        assert new_self not in before

    def test_wrap_relabels_new_node_plus_descendants(self, paper_tree):
        scheme = make_scheme().label_tree(paper_tree)
        report = scheme.insert_internal(paper_tree, 0, 1)  # wrap "a"
        assert report.count == 4  # wrapper + a + a1 + a2
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_wrap_preserves_self_labels_of_moved_nodes(self, paper_tree):
        scheme = make_scheme().label_tree(paper_tree)
        a = paper_tree.children[0]
        old_self = scheme.label_of(a).self_label
        scheme.insert_internal(paper_tree, 0, 1)
        assert scheme.label_of(a).self_label == old_self

    def test_ordered_insert_same_as_unordered(self, paper_tree):
        scheme = make_scheme().label_tree(paper_tree)
        report = scheme.insert_leaf_ordered(paper_tree, 1)
        assert report.count == 1
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_many_random_updates_stay_correct(self):
        import random

        rng = random.Random(42)
        tree = element("r", element("a"), element("b"))
        scheme = PrimeScheme(reserved_primes=4, power2_leaves=True)
        scheme.label_tree(tree)
        for _ in range(40):
            nodes = list(tree.iter_preorder())
            target = rng.choice(nodes)
            action = rng.random()
            if action < 0.6:
                scheme.insert_leaf(target)
            elif target.children:
                end = rng.randint(1, len(target.children))
                scheme.insert_internal(target, 0, end)
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0

    def test_delete_is_free_and_labels_stay_valid(self, paper_tree):
        scheme = make_scheme().label_tree(paper_tree)
        assert scheme.delete(paper_tree.children[0]).count == 0
        _pairs, mismatches = scheme.check_against_tree()
        assert mismatches == 0


class TestSizeAccounting:
    def test_label_bits_is_bit_length(self):
        scheme = make_scheme()
        assert scheme.label_bits(PrimeLabel(value=1, self_label=1)) == 1
        assert scheme.label_bits(PrimeLabel(value=6, self_label=3)) == 3

    def test_max_self_label_bits(self, paper_tree):
        scheme = make_scheme().label_tree(paper_tree)
        assert scheme.max_self_label_bits() >= 2

    def test_depth_drives_label_size(self):
        from repro.datasets.random_tree import chain_tree, star_tree

        deep = make_scheme().label_tree(chain_tree(20))
        wide = make_scheme().label_tree(star_tree(19))
        assert deep.max_label_bits() > wide.max_label_bits()
