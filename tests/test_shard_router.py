"""Router degradation contracts: deadlines, fail-fast, reject, replicas.

Satellite 2 lives here: the fair-share deadline regression with an
injected stalled worker — the total wait for a scatter-gather is bounded
by *one* query budget even when every shard stalls, because each shard's
wait is its share of what remains, not a private full budget.
"""

import time

import pytest

from repro.errors import ShardUnavailableError
from repro.query.live import LiveCollection
from repro.resilient.policy import RetryPolicy
from repro.shard import HealthPolicy, ShardState, ShardedCollection
from repro.xmlkit.parser import parse_document

DOCS = [
    "<r><a><b/></a><c/></r>",
    "<r><x/><y><z/></y></r>",
    "<r><m/><n/></r>",
    "<r><p><q/></p></r>",
]

# Heartbeats parked; restarts held off for 5s so a killed shard stays
# DOWN for the whole assertion window (jitter=0 keeps that exact).
SLOW = HealthPolicy(
    heartbeat_interval=60.0,
    restart_budget=3,
    restart=RetryPolicy(
        max_attempts=4, base_delay=5.0, max_delay=5.0, jitter=0.0, seed=0
    ),
)


def make_service(root, **serving):
    documents = [parse_document(xml) for xml in DOCS]
    serving.setdefault("policy", SLOW)
    return ShardedCollection.create(root / "store", documents, shards=2, **serving)


def wait_down(service, shard_id, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        service.tick()
        if service.supervisor.state_of(shard_id) is ShardState.DOWN:
            return
        time.sleep(0.01)
    raise AssertionError(f"shard {shard_id} never went DOWN")


class FakeReplica:
    """Duck-typed stand-in for a PR 7 replica tailer."""

    def __init__(self, live):
        self.live = live
        self.catch_ups = 0

    def catch_up(self):
        self.catch_ups += 1

    def read_view(self):
        return self.live.read_view()


# ---------------------------------------------------------------------------
# Satellite 2: fair-share deadline accounting


def test_stalled_worker_yields_partial_rows_within_budget(tmp_path):
    with make_service(tmp_path) as service:
        stalled = 0
        healthy_docs = sorted(service.doc_map.by_shard[1])
        service.supervisor.send(stalled, "stall", {"seconds": 1.5})

        result = service.query("//r", budget=0.5)
        assert result.missing_shards == frozenset({stalled})
        assert not result.complete
        # The healthy shard's documents all answered — a stalled peer
        # degrades the answer, it does not starve it.
        assert [row.doc for row in result.rows] == healthy_docs
        assert result.elapsed < 1.0


def test_fair_share_bounds_total_wait_to_one_budget(tmp_path):
    # Regression: both workers stall.  Naive per-shard deadlines would
    # wait a full budget per shard (2 x 0.6s); fair-share accounting
    # gives each gather its share of what *remains*, so the whole
    # scatter-gather is bounded by a single budget.
    with make_service(tmp_path) as service:
        for shard_id in service.supervisor.shard_ids:
            service.supervisor.send(shard_id, "stall", {"seconds": 2.0})
        started = time.monotonic()
        result = service.query("//r", budget=0.6)
        wall = time.monotonic() - started
        assert result.missing_shards == frozenset({0, 1})
        assert result.rows == ()
        assert result.elapsed < 1.0 and wall < 1.1  # naive would be ~1.2s
        # Deadline misses are not crashes: both workers are merely slow
        # and stay UP for the heartbeat path to escalate if it repeats.
        assert all(service.supervisor.is_up(s) for s in (0, 1))


# ---------------------------------------------------------------------------
# Degradation modes


def test_fail_fast_query_names_the_missing_shards(tmp_path):
    with make_service(tmp_path, query_mode="fail_fast") as service:
        shard_id, _ = service.doc_map.to_local(0)
        service.kill_worker(shard_id)
        wait_down(service, shard_id)
        with pytest.raises(ShardUnavailableError, match="fail_fast") as excinfo:
            service.query("//r", budget=0.5)
        assert f"[{shard_id}]" in str(excinfo.value)


def test_reject_policy_refuses_mutations_to_a_down_shard(tmp_path):
    with make_service(tmp_path, mutation_policy="reject") as service:
        shard_id, _ = service.doc_map.to_local(0)
        service.kill_worker(shard_id)
        wait_down(service, shard_id)
        with pytest.raises(ShardUnavailableError) as excinfo:
            service.insert_child(0, parent=0, index=0, tag="w")
        message = str(excinfo.value)
        assert f"shard {shard_id}" in message and "down" in message
        # Reads still degrade gracefully alongside the reject policy.
        result = service.query("//r", budget=0.5)
        assert result.missing_shards == frozenset({shard_id})


def test_replica_fallback_serves_stale_reads_for_a_down_shard(tmp_path):
    with make_service(tmp_path) as service:
        shard_id, _ = service.doc_map.to_local(0)
        owned = service.doc_map.by_shard[shard_id]
        replica = FakeReplica(
            LiveCollection([parse_document(DOCS[g]) for g in owned])
        )
        service.attach_replica(shard_id, replica)
        service.kill_worker(shard_id)
        wait_down(service, shard_id)

        result = service.query("//r", budget=1.0)
        # Nothing is *missing* — the replica answered for the down shard
        # — but the answer is honestly tagged stale, never complete.
        assert result.missing_shards == frozenset()
        assert result.stale_shards == frozenset({shard_id})
        assert not result.complete
        assert [row.doc for row in result.rows] == list(range(len(DOCS)))
        assert replica.catch_ups >= 1

        counted = service.count("//r", budget=1.0)
        assert counted["count"] == len(DOCS)
        assert counted["stale_shards"] == {shard_id}
