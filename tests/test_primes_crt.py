"""Unit tests for repro.primes.crt — the SC table's algebraic core."""

import pytest

from repro.primes.crt import CongruenceSystem, solve_congruences, solve_congruences_euler


class TestSolveCongruences:
    def test_paper_example(self):
        """Section 4.1's worked example: P=[3,4,5], I=[1,2,3] -> x=58."""
        assert solve_congruences([3, 4, 5], [1, 2, 3]) == 58

    def test_figure9_sc_value(self):
        """Figure 9: self-labels 2,3,5,7,11,13 with orders 1..6 give 29243."""
        assert solve_congruences([2, 3, 5, 7, 11, 13], [1, 2, 3, 4, 5, 6]) == 29243

    def test_figure12_first_record(self):
        """Figure 11/12's updated first record equations."""
        x = solve_congruences([2, 3, 5, 7, 11], [1, 2, 4, 5, 6])
        for modulus, residue in [(2, 1), (3, 2), (5, 4), (7, 5), (11, 6)]:
            assert x % modulus == residue

    def test_figure11_second_record(self):
        x = solve_congruences([13, 17], [7, 3])
        assert x % 13 == 7 and x % 17 == 3

    def test_empty_system(self):
        assert solve_congruences([], []) == 0

    def test_single_congruence(self):
        assert solve_congruences([7], [5]) == 5

    def test_residues_reduced_modulo(self):
        assert solve_congruences([5], [12]) == 2

    def test_solution_in_range(self):
        x = solve_congruences([3, 5, 7], [2, 3, 2])
        assert 0 <= x < 105

    def test_non_coprime_compatible(self):
        # x = 2 mod 4 and x = 0 mod 6 -> x = 6 mod 12
        assert solve_congruences([4, 6], [2, 0]) == 6

    def test_non_coprime_incompatible_raises(self):
        with pytest.raises(ValueError):
            solve_congruences([4, 6], [1, 0])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            solve_congruences([3, 5], [1])

    def test_nonpositive_modulus_raises(self):
        with pytest.raises(ValueError):
            solve_congruences([0], [0])


class TestEulerFormula:
    def test_matches_paper_example(self):
        assert solve_congruences_euler([3, 4, 5], [1, 2, 3]) == 58

    def test_matches_incremental_solver(self):
        moduli, residues = [2, 3, 5, 7, 11, 13], [1, 2, 3, 4, 5, 6]
        assert solve_congruences_euler(moduli, residues) == solve_congruences(
            moduli, residues
        )

    def test_requires_coprime(self):
        with pytest.raises(ValueError):
            solve_congruences_euler([4, 6], [2, 0])

    def test_empty(self):
        assert solve_congruences_euler([], []) == 0


class TestCongruenceSystem:
    def test_value_matches_solver(self):
        system = CongruenceSystem([3, 4, 5], [1, 2, 3])
        assert system.value == 58

    def test_append_is_incremental_and_correct(self):
        system = CongruenceSystem([2, 3], [1, 2])
        baseline = system.value  # force caching
        assert baseline % 2 == 1
        system.append(5, 3)
        assert system.value % 5 == 3
        assert system.value % 2 == 1 and system.value % 3 == 2

    def test_append_without_prior_solve(self):
        system = CongruenceSystem()
        system.append(7, 4)
        system.append(11, 9)
        assert system.value % 7 == 4 and system.value % 11 == 9

    def test_set_residues_bulk_update(self):
        system = CongruenceSystem([2, 3, 5, 7, 11], [1, 2, 3, 4, 5])
        system.set_residues({5: 4, 7: 5, 11: 6})
        assert system.value == solve_congruences([2, 3, 5, 7, 11], [1, 2, 4, 5, 6])

    def test_set_residue_unknown_modulus_raises(self):
        system = CongruenceSystem([3], [1])
        with pytest.raises(KeyError):
            system.set_residues({5: 0})

    def test_remove(self):
        system = CongruenceSystem([3, 5], [1, 2])
        system.remove(3)
        assert system.moduli == (5,)
        assert system.value == 2

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            CongruenceSystem([3], [1]).remove(5)

    def test_duplicate_modulus_rejected(self):
        system = CongruenceSystem([3], [1])
        with pytest.raises(ValueError):
            system.append(3, 2)

    def test_non_coprime_append_rejected(self):
        system = CongruenceSystem([6], [1])
        with pytest.raises(ValueError):
            system.append(4, 2)

    def test_check(self):
        system = CongruenceSystem([2, 3, 5], [1, 2, 3])
        assert system.check()

    def test_len_and_contains(self):
        system = CongruenceSystem([2, 3], [0, 1])
        assert len(system) == 2
        assert 3 in system and 5 not in system

    def test_product(self):
        assert CongruenceSystem([3, 5, 7], [0, 0, 0]).product == 105

    def test_residue_lookup(self):
        system = CongruenceSystem([5], [3])
        assert system.residue(5) == 3
        with pytest.raises(KeyError):
            system.residue(7)

    def test_empty_value_zero(self):
        assert CongruenceSystem().value == 0


class TestIncrementalMaintenance:
    """The incremental shortcuts against the from-scratch oracle.

    ``set_residues`` (CRT-basis delta), ``remove`` (modulo-reduction), and
    deferred mode all promise the same value a fresh ``solve_congruences``
    would produce; ``check()`` is the paper's own verification predicate.
    """

    PRIMES = (2, 3, 5, 7, 11, 13, 17, 19)

    def test_randomized_mutation_sequence_matches_oracle(self):
        import random

        rng = random.Random(42)
        for _round in range(20):
            moduli = list(rng.sample(self.PRIMES, rng.randint(2, 6)))
            system = CongruenceSystem(
                moduli, [rng.randrange(m) for m in moduli]
            )
            system.value  # force the cache so every mutation is incremental
            for _step in range(15):
                roll = rng.random()
                if roll < 0.5 and len(system) > 1:
                    chosen = rng.sample(
                        system.moduli, rng.randint(1, len(system) - 1)
                    )
                    system.set_residues(
                        {m: rng.randrange(m) for m in chosen}
                    )
                elif roll < 0.75 and len(system) > 1:
                    system.remove(rng.choice(system.moduli))
                else:
                    absent = [p for p in self.PRIMES if p not in system]
                    if absent:
                        m = rng.choice(absent)
                        system.append(m, rng.randrange(m))
                assert system.check()
                assert system.value == solve_congruences(
                    list(system.moduli),
                    [system.residue(m) for m in system.moduli],
                )

    def test_set_residues_is_delta_based_not_resolve(self, monkeypatch):
        import repro.primes.crt as crt

        system = CongruenceSystem([3, 5, 7], [1, 2, 3])
        system.value  # cache
        calls = []

        def counting_solve(moduli, residues):
            calls.append(tuple(moduli))
            return solve_congruences(moduli, residues)

        monkeypatch.setattr(crt, "solve_congruences", counting_solve)
        system.set_residues({3: 2, 7: 6})
        assert system.value % 3 == 2 and system.value % 7 == 6
        assert calls == []  # maintained by CRT-basis delta, never re-solved

    def test_remove_is_modulo_reduction_not_resolve(self, monkeypatch):
        import repro.primes.crt as crt

        system = CongruenceSystem([3, 5, 7], [2, 4, 3])
        expected_value = system.value
        monkeypatch.setattr(
            crt,
            "solve_congruences",
            lambda *a: pytest.fail("remove must not re-solve"),
        )
        system.remove(5)
        assert system.value == expected_value % (3 * 7)
        assert system.value % 3 == 2 and system.value % 7 == 3

    def test_deferred_mode_solves_once_at_exit(self, monkeypatch):
        import repro.primes.crt as crt

        system = CongruenceSystem([3, 5], [1, 2])
        system.value
        calls = []

        def counting_solve(moduli, residues):
            calls.append(tuple(moduli))
            return solve_congruences(moduli, residues)

        monkeypatch.setattr(crt, "solve_congruences", counting_solve)
        system.begin_deferred()
        assert system.deferred
        system.append(7, 4)
        system.set_residues({3: 0, 5: 3})
        system.remove(5)
        assert calls == []  # mutations were dictionary-only
        system.end_deferred()
        assert not system.deferred
        assert system.value % 3 == 0 and system.value % 7 == 4
        assert len(calls) == 1  # exactly one solve paid for the whole batch
        assert system.check()

    def test_deferred_mid_batch_read_still_correct(self):
        system = CongruenceSystem([3, 5], [1, 2])
        system.begin_deferred()
        system.set_residues({3: 2})
        # Reading mid-batch lazily solves; the next mutation re-invalidates.
        assert system.value % 3 == 2 and system.value % 5 == 2
        system.set_residues({5: 4})
        system.end_deferred()
        assert system.value % 3 == 2 and system.value % 5 == 4
        assert system.check()
