"""Failure injection: corrupted inputs must fail loudly, never wrongly.

Random corruption of persisted stores and malformed data paths: the
library must raise its own exception types (never IndexError/struct.error
leaking out, and never silently return wrong data structures).
"""

import random

import pytest

from repro.errors import LabelingError, QueryEvaluationError, ReproError, XmlSyntaxError
from repro.labeling.codec import FixedWidthCodec, VarintCodec
from repro.query.engine import QueryEngine
from repro.query.persist import load_store, save_store
from repro.query.store import LabelStore
from repro.xmlkit.parser import parse_document

DOC = "<r><a>x</a><b><c/><c/></b></r>"


@pytest.fixture
def store_file(tmp_path):
    store = LabelStore.build([parse_document(DOC)], scheme="interval")
    path = tmp_path / "store.bin"
    save_store(store, path)
    return path


class TestCorruptedStoreFiles:
    def test_truncations_never_crash(self, store_file):
        blob = store_file.read_bytes()
        for cut in range(0, len(blob), max(len(blob) // 40, 1)):
            store_file.write_bytes(blob[:cut])
            try:
                load_store(store_file)
            except ReproError:
                pass  # the only acceptable failure mode

    def test_random_byte_flips_never_crash(self, store_file):
        blob = bytearray(store_file.read_bytes())
        rng = random.Random(5)
        for _ in range(60):
            corrupted = bytearray(blob)
            position = rng.randrange(len(corrupted))
            corrupted[position] ^= 1 << rng.randrange(8)
            store_file.write_bytes(bytes(corrupted))
            try:
                loaded = load_store(store_file)
                # a surviving load must still be internally consistent
                # enough to answer a query without crashing
                QueryEngine(loaded).evaluate("/r//c")
            except ReproError:
                pass
            except (KeyError, ValueError) as error:
                pytest.fail(f"leaked low-level exception: {error!r}")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(QueryEvaluationError):
            load_store(path)


class TestStoreChecksum:
    """The v2 RPLS footer: corruption is *detected*, not merely survived."""

    def test_v3_is_the_default_and_round_trips(self, tmp_path):
        store = LabelStore.build([parse_document(DOC)], scheme="prime")
        path = tmp_path / "store.bin"
        save_store(store, path)
        assert path.read_bytes()[4] == 3  # version byte
        loaded = load_store(path)
        assert len(QueryEngine(loaded).evaluate("/r//c")) == 2

    def test_v2_files_remain_readable(self, tmp_path):
        store = LabelStore.build([parse_document(DOC)], scheme="prime")
        path = tmp_path / "store-v2.bin"
        save_store(store, path, version=2)
        assert path.read_bytes()[4] == 2
        loaded = load_store(path)
        assert len(QueryEngine(loaded).evaluate("/r//c")) == 2

    def test_v1_files_remain_readable(self, tmp_path):
        store = LabelStore.build([parse_document(DOC)], scheme="prime")
        path = tmp_path / "store-v1.bin"
        save_store(store, path, version=1)
        assert path.read_bytes()[4] == 1
        loaded = load_store(path)
        assert len(QueryEngine(loaded).evaluate("/r//c")) == 2

    def test_every_bit_flip_in_a_v2_store_is_rejected(self, tmp_path):
        """With the CRC footer, *silent* acceptance of damage is over: every
        single-bit flip must raise, where v1 only promised not to crash."""
        store = LabelStore.build([parse_document(DOC)], scheme="prime")
        path = tmp_path / "store.bin"
        save_store(store, path)
        blob = path.read_bytes()
        for offset in range(len(blob)):
            for bit in range(8):
                corrupted = bytearray(blob)
                corrupted[offset] ^= 1 << bit
                path.write_bytes(bytes(corrupted))
                with pytest.raises(ReproError):
                    load_store(path)

    def test_every_truncation_of_a_v2_store_is_rejected(self, tmp_path):
        store = LabelStore.build([parse_document(DOC)], scheme="interval")
        path = tmp_path / "store.bin"
        save_store(store, path)
        blob = path.read_bytes()
        for cut in range(len(blob)):
            path.write_bytes(blob[:cut])
            with pytest.raises(ReproError):
                load_store(path)


class TestCodecGarbage:
    def test_fixed_codec_garbage_blob(self):
        codec = FixedWidthCodec("prime", 2, 2)
        with pytest.raises(LabelingError):
            codec.decode(b"\xff")

    def test_fixed_codec_inconsistent_prime_fields(self):
        # decoded fields that are not a valid PrimeLabel must raise the
        # library error, not a bare dataclass ValueError escaping unwrapped
        codec = FixedWidthCodec("prime", 2, 2)
        blob = (7).to_bytes(2, "big") + (3).to_bytes(2, "big")  # 3 !| 7
        with pytest.raises((LabelingError, ValueError)):
            codec.decode(blob)

    def test_varint_shift_bomb(self):
        codec = VarintCodec("dewey")
        with pytest.raises(LabelingError):
            codec.decode(b"\xff" * 3)  # truncated continuation chain


class TestParserHostileInput:
    @pytest.mark.parametrize(
        "hostile",
        [
            "<" * 2000,
            "<a " + "x" * 500,
            "<a>" + "&" * 100,
            "<!DOCTYPE " + "[" * 200,
            "<a><![CDATA[" + "x" * 10_000,
        ],
    )
    def test_pathological_inputs_raise_cleanly(self, hostile):
        with pytest.raises(XmlSyntaxError):
            parse_document(hostile)

    def test_deeply_nested_within_reason(self):
        depth = 400
        text = "<a>" * depth + "</a>" * depth
        root = parse_document(text)
        assert root.stats().depth == depth - 1
