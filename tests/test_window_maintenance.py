"""Randomized soak for incremental window-column maintenance.

The acceptance bar: after any interleaving of single-op and batched
mutations, the patched store's pre/post/level/size columns must be
*byte-identical* to a from-scratch rebuild (keyed by node identity,
since element ids are assigned differently by the two paths), the
collection must stay audit-clean, and ``live.engine_rebuilds`` must not
grow per-op.  The two named satellite regressions — per-document scheme
resolution in ``PrimeOps`` and ``BatchOp.insert_child`` index
validation — are pinned at the bottom.
"""

from random import Random

import pytest

from repro.errors import QueryEvaluationError
from repro.obs import metrics
from repro.obs.audit import audit_ordered_document
from repro.query.live import BatchOp, LiveCollection
from repro.xmlkit.parser import parse_document

DOC = """
<play>
  <act><scene><speech><line/><line/></speech></scene></act>
  <act><scene><speech><line/></speech><speech><line/></speech></scene></act>
</play>
"""

QUERIES = (
    "/play//line",
    "/play/act/scene",
    "/act//Following::speech",
    "/speech//Preceding::line",
    "/scene/Following-Sibling::scene",
    "/play//speech[2]",
)


def columns_by_node(store):
    """The window columns keyed by (doc_id, node identity).

    Element ids differ between a patched store (monotonic ``_next_id``)
    and a rebuilt one (preorder renumbering); the tree nodes are the
    stable identity shared by both.
    """
    assert store.windows is not None
    mapping = {}
    for row in store.rows:
        entry = store.windows.entry_of(row)
        assert entry is not None, row
        mapping[(row.doc_id, id(row.node))] = (
            entry.pre,
            entry.post,
            entry.level,
            entry.size,
        )
    return mapping


def assert_columns_match_rebuild(collection):
    patched = collection.engine.store
    rebuilt = collection._build_engine().store
    assert columns_by_node(patched) == columns_by_node(rebuilt)
    # The row tables themselves must agree too (same nodes, same labels).
    patched_rows = {
        (row.doc_id, id(row.node)): (row.tag, row.depth, str(row.label))
        for row in patched.rows
    }
    rebuilt_rows = {
        (row.doc_id, id(row.node)): (row.tag, row.depth, str(row.label))
        for row in rebuilt.rows
    }
    assert patched_rows == rebuilt_rows


def assert_audit_clean(collection):
    for ordered in collection.ordered_documents:
        audit_ordered_document(ordered).raise_if_failed()


def random_mutation(rng, collection):
    """Apply one random single-document mutation; returns its kind."""
    doc = rng.randrange(len(collection.documents))
    root = collection.documents[doc]
    nodes = list(root.iter_preorder())
    kind = rng.choice(("insert_child", "insert_before", "insert_after", "delete"))
    if kind == "insert_child":
        parent = rng.choice(nodes)
        collection.insert_child(
            parent, rng.randint(0, len(parent.children)), tag=f"n{rng.randrange(9)}"
        )
    elif kind in ("insert_before", "insert_after"):
        candidates = [n for n in nodes if n.parent is not None]
        if not candidates:
            return None
        getattr(collection, kind)(rng.choice(candidates), tag=f"n{rng.randrange(9)}")
    else:
        candidates = [n for n in nodes if n.parent is not None]
        if len(candidates) < 4:  # keep the tree from collapsing
            return None
        collection.delete(rng.choice(candidates))
    return kind


def random_batch(rng, collection):
    """Apply one randomly assembled batch via ``apply_batch``."""
    root = rng.choice(collection.documents)
    ops = []
    nodes = [n for n in root.iter_preorder() if n.parent is not None]
    for _ in range(rng.randint(1, 4)):
        parent = rng.choice(list(root.iter_preorder()))
        ops.append(
            BatchOp.insert_child(
                parent, rng.randint(0, len(parent.children)), tag="batched"
            )
        )
    if len(nodes) > 6 and rng.random() < 0.5:
        victim = rng.choice(nodes)
        if all(op.node is not victim for op in ops):
            ops.append(BatchOp.delete(victim))
    collection.apply_batch(ops)


class TestIncrementalMaintenanceSoak:
    @pytest.mark.parametrize("seed", [11, 29, 83])
    def test_interleaved_soak_matches_rebuild(self, seed):
        rng = Random(seed)
        collection = LiveCollection(
            [parse_document(DOC), parse_document(DOC)], group_size=5
        )
        engine = collection.engine  # build once, then never again
        oracle_rebuilds = 0
        with metrics.collecting() as collected:
            for round_no in range(12):
                if rng.random() < 0.3:
                    random_batch(rng, collection)
                else:
                    random_mutation(rng, collection)
                if round_no % 4 == 3:
                    # The oracle's from-scratch build is the only rebuild
                    # the soak may observe; the live engine never rebuilds.
                    assert_columns_match_rebuild(collection)
                    oracle_rebuilds += 1
            assert collection.engine is engine
            assert (
                collected.counter_value("live.engine_rebuilds") == oracle_rebuilds
            )
            assert collected.counter_value("live.store_patch_failures") == 0
        assert_columns_match_rebuild(collection)
        assert_audit_clean(collection)
        assert collection.check()

    @pytest.mark.parametrize("seed", [7, 41])
    def test_soak_preserves_query_parity(self, seed):
        rng = Random(seed)
        collection = LiveCollection([parse_document(DOC)], group_size=5)
        for _ in range(10):
            random_mutation(rng, collection)
        fresh = collection._build_engine()
        for query in QUERIES:
            live_ids = [id(r.node) for r in collection.query(query)]
            fresh_ids = [id(r.node) for r in fresh.evaluate(query)]
            assert live_ids == fresh_ids, query

    def test_patch_failure_falls_back_to_rebuild(self, monkeypatch):
        collection = LiveCollection([parse_document(DOC)])
        engine = collection.engine

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic patch fault")

        monkeypatch.setattr(engine.store, "insert_row", boom)
        with metrics.collecting() as collected:
            collection.insert_child(collection.documents[0], 0)
            assert collected.counter_value("live.store_patch_failures") == 1
        assert collection.engine is not engine  # rebuilt, still correct
        assert collection.count("/play/new") == 1


class TestPerDocumentSchemeResolution:
    """Satellite regression: ``PrimeOps`` trusted only the first doc's scheme.

    Each document labels itself with its own ``PrimeScheme`` instance;
    after divergent mutations the shared-instance shortcut answers
    ancestor tests against the wrong label assignments.  ``scheme_for``
    must resolve the owning document's scheme per call.
    """

    def test_ops_resolve_each_documents_own_scheme(self):
        collection = LiveCollection(
            [parse_document(DOC), parse_document("<r><a><b/></a></r>")]
        )
        ops = collection.engine.store.ops
        for doc_id, ordered in enumerate(collection.ordered_documents):
            assert ops.scheme_for(doc_id) is ordered.scheme

    def test_fallback_scheme_when_document_unknown(self):
        collection = LiveCollection([parse_document(DOC)])
        ops = collection.engine.store.ops
        assert ops.scheme_for(999) is ops._scheme

    @pytest.mark.parametrize("seed", [3, 17])
    def test_queries_stay_correct_after_divergent_mutations(self, seed):
        rng = Random(seed)
        collection = LiveCollection(
            [parse_document(DOC), parse_document(DOC), parse_document(DOC)]
        )
        # Mutate only the later documents so their schemes diverge from
        # document 0's (the old code's single source of truth).
        for _ in range(8):
            doc = rng.choice((1, 2))
            root = collection.documents[doc]
            parent = rng.choice(list(root.iter_preorder()))
            collection.insert_child(parent, len(parent.children), tag="inserted")
        fresh = collection._build_engine()
        for query in ("/play//inserted", "/play//line", "/act//Following::speech"):
            assert collection.count(query) == len(fresh.evaluate(query)), query
        assert_audit_clean(collection)


class TestBatchOpIndexValidation:
    """Satellite regression: bad ``insert_child`` indexes were accepted.

    A negative index silently wrapped (list semantics) and a past-end
    index appended — both corrupting the intended sibling order.  Negative
    indexes now fail at construction; past-end fails at application,
    naming the op's position in the batch.
    """

    def test_negative_index_rejected_at_construction(self):
        parent = parse_document("<r><a/></r>")
        with pytest.raises(QueryEvaluationError, match="negative"):
            BatchOp.insert_child(parent, -1)

    def test_past_end_index_rejected_naming_position(self):
        root = parse_document("<r><a/><b/></r>")
        collection = LiveCollection([root])
        ops = [
            BatchOp.insert_child(root, 0, tag="ok"),
            BatchOp.insert_child(root, 99, tag="overflow"),
        ]
        with pytest.raises(QueryEvaluationError, match=r"batch op 1.*past the end"):
            collection.apply_batch(ops)
        # The applied prefix stays (all-or-nothing is the durable layer's
        # contract), the overflow op does not, and the store is rebuilt
        # consistent with the tree.
        assert collection.count("/r/ok") == 1
        assert collection.count("/r/overflow") == 0
        assert_columns_match_rebuild(collection)

    def test_boundary_index_still_accepted(self):
        root = parse_document("<r><a/><b/></r>")
        collection = LiveCollection([root])
        collection.apply_batch([BatchOp.insert_child(root, len(root.children))])
        assert [child.tag for child in root.children] == ["a", "b", "new"]
