"""Crash recovery: the crash matrix, snapshot fallback, and replay fidelity.

The central claim of the durability subsystem is *byte-identical*
recovery: crash the process at any WAL record boundary, recover, and the
collection's entire durable state (trees, prime labels, generator
positions, SC grouping, accumulated cost) matches a run that never
crashed.  These tests enforce the claim exhaustively — one simulated
crash at **every** record boundary of a 200+-operation randomized
workload — plus the corruption-fallback half of the protocol.
"""

import os
import random

import pytest

from repro.durable import (
    CrashAfterAppends,
    DurableCollection,
    InjectedCrash,
    TornAppend,
    collection_fingerprint,
    recover,
)
from repro.durable.recovery import snapshot_path
from repro.durable.faults import flip_bit, truncate_file
from repro.errors import RecoveryError
from repro.xmlkit.parser import parse_document

BASE_DOC = "<r><a><a1/><a2/></a><b/><c><d/></c></r>"
EXTRA_DOC = "<p><q>text</q><q/></p>"
OPERATIONS = 200
WORKLOAD_SEED = 23
#: Crash runs honor the CI fault-injection matrix: recovery must be
#: byte-identical under every fsync policy (the policy moves the loss
#: window, not the replay semantics).  Locally defaults to the fast one.
FSYNC = os.environ.get("REPRO_WAL_FSYNC", "never")


def apply_operation_number(collection, rng, step):
    """Apply the ``step``-th workload operation.

    Choices depend only on the rng stream and current state, so two runs
    from the same starting point perform the identical sequence.
    """
    roll = rng.random()
    if roll < 0.04:
        collection.add_document(parse_document(EXTRA_DOC))
        return
    if roll < 0.07:
        collection.compact()
        return
    roots = collection.documents
    root = roots[rng.randrange(len(roots))]
    nodes = list(root.iter_preorder())
    target = nodes[rng.randrange(len(nodes))]
    if roll < 0.60:
        collection.insert_child(target, rng.randint(0, len(target.children)))
    elif roll < 0.75 and target is not root:
        collection.insert_before(target, tag=f"n{step}")
    elif roll < 0.90 and target is not root:
        collection.insert_after(target, tag=f"n{step}")
    elif target is not root:
        collection.delete(target)
    else:
        collection.insert_child(target, 0)


def run_workload(collection, operations, checkpoint_at=None):
    """Run the deterministic workload; returns per-step fingerprints.

    ``fingerprints[k]`` is the state after ``k`` operations (index 0 =
    the freshly created collection).  Stops early — recording nothing for
    the interrupted step — if an injected crash fires.
    """
    rng = random.Random(WORKLOAD_SEED)
    fingerprints = [collection_fingerprint(collection.live)]
    for step in range(operations):
        try:
            apply_operation_number(collection, rng, step)
        except InjectedCrash:
            break
        fingerprints.append(collection_fingerprint(collection.live))
        if checkpoint_at is not None and step + 1 == checkpoint_at:
            collection.checkpoint()
    return fingerprints


@pytest.fixture(scope="module")
def reference_fingerprints(tmp_path_factory):
    """Fingerprints after each of the workload's operations, no crash."""
    workdir = tmp_path_factory.mktemp("reference")
    collection = DurableCollection.create(
        workdir / "col", [parse_document(BASE_DOC)], fsync="never"
    )
    fingerprints = run_workload(collection, OPERATIONS)
    collection.close()
    assert len(fingerprints) == OPERATIONS + 1
    return fingerprints


class TestCrashMatrix:
    def test_recovery_is_byte_identical_at_every_record_boundary(
        self, tmp_path, reference_fingerprints
    ):
        """One crash per WAL record boundary, 0..OPERATIONS."""
        mismatches = []
        for crash_after in range(OPERATIONS + 1):
            workdir = tmp_path / f"crash-{crash_after}"
            collection = DurableCollection.create(
                workdir,
                [parse_document(BASE_DOC)],
                fsync=FSYNC,
                faults=CrashAfterAppends(crash_after),
            )
            survived = run_workload(collection, OPERATIONS)
            applied = len(survived) - 1
            assert applied == min(crash_after, OPERATIONS)
            recovered = recover(workdir)
            if (
                collection_fingerprint(recovered.collection)
                != reference_fingerprints[applied]
            ):
                mismatches.append(crash_after)
        assert mismatches == []

    @pytest.mark.parametrize("checkpoint_at", [1, 50, 120])
    def test_crashes_after_a_checkpoint_recover_identically(
        self, tmp_path, reference_fingerprints, checkpoint_at
    ):
        """A mid-run checkpoint changes the recovery *path* (snapshot base
        + shorter replay) but must not change the recovered state."""
        for crash_after in (checkpoint_at, checkpoint_at + 7, OPERATIONS):
            workdir = tmp_path / f"ckpt-{checkpoint_at}-{crash_after}"
            collection = DurableCollection.create(
                workdir,
                [parse_document(BASE_DOC)],
                fsync=FSYNC,
                faults=CrashAfterAppends(crash_after),
            )
            survived = run_workload(
                collection, OPERATIONS, checkpoint_at=checkpoint_at
            )
            applied = len(survived) - 1
            recovered = recover(workdir)
            assert (
                collection_fingerprint(recovered.collection)
                == reference_fingerprints[applied]
            )
            if applied > checkpoint_at:
                assert recovered.info.generation == 2
                assert recovered.info.replayed_records == applied - checkpoint_at

    # 16 is the record-header boundary; 17 tears one byte into the payload
    # (v3 binary payloads are only a few bytes, so larger cuts could cover
    # a whole record and tear nothing).
    @pytest.mark.parametrize("keep_bytes", [0, 1, 8, 15, 16, 17])
    def test_torn_final_record_recovers_to_the_previous_boundary(
        self, tmp_path, reference_fingerprints, keep_bytes
    ):
        torn_at = 60
        workdir = tmp_path / f"torn-{keep_bytes}"
        collection = DurableCollection.create(
            workdir,
            [parse_document(BASE_DOC)],
            fsync=FSYNC,
            faults=TornAppend(at=torn_at, keep_bytes=keep_bytes),
        )
        survived = run_workload(collection, OPERATIONS)
        assert len(survived) - 1 == torn_at - 1
        recovered = recover(workdir)
        assert recovered.info.torn_bytes == keep_bytes
        assert (
            collection_fingerprint(recovered.collection)
            == reference_fingerprints[torn_at - 1]
        )


class TestSnapshotFallback:
    def build(self, workdir, ops_before=30, ops_after=20):
        collection = DurableCollection.create(
            workdir, [parse_document(BASE_DOC)], fsync=FSYNC
        )
        rng = random.Random(WORKLOAD_SEED)
        for step in range(ops_before):
            apply_operation_number(collection, rng, step)
        collection.checkpoint()  # generation 2
        for step in range(ops_before, ops_before + ops_after):
            apply_operation_number(collection, rng, step)
        fingerprint = collection_fingerprint(collection.live)
        collection.close()
        return fingerprint

    @pytest.mark.parametrize("damage", ["flip-header", "flip-middle", "truncate"])
    def test_corrupt_latest_generation_falls_back_and_still_replays(
        self, tmp_path, damage
    ):
        fingerprint = self.build(tmp_path)
        latest = snapshot_path(tmp_path, 2)
        if damage == "flip-header":
            flip_bit(latest, 6)
        elif damage == "flip-middle":
            flip_bit(latest, latest.stat().st_size // 2, 5)
        else:
            truncate_file(latest, latest.stat().st_size // 3)
        recovered = recover(tmp_path)
        assert recovered.info.generation == 1
        assert recovered.info.skipped_generations == [2]
        # generation 1 predates every WAL record, so the full history replays
        assert collection_fingerprint(recovered.collection) == fingerprint

    def test_all_generations_corrupt_is_a_recovery_error(self, tmp_path):
        self.build(tmp_path)
        flip_bit(snapshot_path(tmp_path, 1), 10)
        flip_bit(snapshot_path(tmp_path, 2), 10)
        with pytest.raises(RecoveryError) as excinfo:
            recover(tmp_path)
        assert "generation" in str(excinfo.value)

    def test_empty_directory_is_a_recovery_error(self, tmp_path):
        with pytest.raises(RecoveryError):
            recover(tmp_path)

    def test_missing_directory_is_a_recovery_error(self, tmp_path):
        with pytest.raises(RecoveryError):
            recover(tmp_path / "never-created")


class TestReplayFidelity:
    def test_recovery_reports_replayed_counts(self, tmp_path):
        collection = DurableCollection.create(
            tmp_path / "col", [parse_document(BASE_DOC)], fsync="always"
        )
        rng = random.Random(1)
        for step in range(25):
            apply_operation_number(collection, rng, step)
        collection.close()
        recovered = recover(tmp_path / "col")
        assert recovered.info.replayed_records == 25
        assert recovered.info.generation == 1
        assert recovered.info.audit_checks > 0
        assert recovered.collection.check()

    def test_recovered_collection_answers_queries(self, tmp_path):
        collection = DurableCollection.create(
            tmp_path / "col", [parse_document(BASE_DOC)], fsync="always"
        )
        collection.insert_child(collection.documents[0], 0, tag="z")
        collection.add_document(parse_document(EXTRA_DOC))
        expected = {
            query: collection.count(query) for query in ("//q", "//z", "//*")
        }
        collection.close()
        recovered = DurableCollection.open(tmp_path / "col")
        for query, count in expected.items():
            assert recovered.count(query) == count
        recovered.close()
