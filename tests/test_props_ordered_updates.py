"""Property-style randomized workout: the deep auditor stays green under a
long random interleaving of ordered insertions and deletions.

This is the integration net under the update path: every step re-checks
the full invariant catalogue (labels, SC table, routing, preorder
agreement), so a bug in ``insert_*``/``delete``/overflow repair surfaces
at the exact operation that introduced it.
"""

import random

from repro.obs.audit import audit_ordered_document
from repro.order.document import OrderedDocument
from repro.xmlkit.builder import element

OPERATIONS = 220  # the issue asks for at least 200


def run_workout(seed: int, operations: int = OPERATIONS) -> OrderedDocument:
    """Apply ``operations`` random updates, auditing after every one."""
    rng = random.Random(seed)
    doc = OrderedDocument(
        element("r", element("a"), element("b")), group_size=rng.choice([1, 3, 5])
    )
    for step in range(operations):
        nodes = list(doc.root.iter_preorder())
        non_root = nodes[1:]
        roll = rng.random()
        if roll < 0.30 or not non_root:
            parent = rng.choice(nodes)
            doc.append_child(parent, tag=f"n{step}")
        elif roll < 0.50:
            doc.insert_before(rng.choice(non_root), tag=f"n{step}")
        elif roll < 0.70:
            doc.insert_after(rng.choice(non_root), tag=f"n{step}")
        elif roll < 0.85:
            parent = rng.choice(nodes)
            doc.insert_child(
                parent, rng.randint(0, len(parent.children)), tag=f"n{step}"
            )
        else:
            doc.delete(rng.choice(non_root))
        report = audit_ordered_document(doc, ancestor_samples=24, seed=step)
        assert report.ok, f"seed={seed} step={step}:\n{report.summary()}"
    return doc


def test_long_random_interleaving_keeps_all_invariants():
    doc = run_workout(seed=20040306)
    assert doc.check()
    assert doc.sc_table.check()


def test_other_seeds_and_group_sizes():
    for seed in (1, 7):
        doc = run_workout(seed=seed, operations=60)
        assert doc.check()
