"""Tests for persistence, exhibit export, and streaming labelers."""

import pytest

from repro.bench.export import (
    exhibit_builders,
    export_all_exhibits,
    table_to_csv,
    table_to_json,
)
from repro.bench.harness import ResultTable
from repro.datasets.shakespeare import play
from repro.errors import QueryEvaluationError
from repro.labeling.dewey import DeweyScheme
from repro.labeling.interval import StartEndIntervalScheme
from repro.labeling.prime import PrimeScheme
from repro.query.engine import QueryEngine
from repro.query.persist import load_store, save_store
from repro.query.store import LabelStore
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serialize import serialize
from repro.xmlkit.streaming import stream_labels, stream_prime_labels

DOC = "<play><title/><act><scene><speech><line/><line/></speech></scene></act></play>"


class TestExport:
    def make_table(self):
        table = ResultTable(title="T", columns=("k", "v"), note="n")
        table.add_row("a", 1)
        table.add_row("b", 2)
        return table

    def test_csv_round_trip(self, tmp_path):
        path = tmp_path / "t.csv"
        table_to_csv(self.make_table(), path)
        import csv

        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows == [["k", "v"], ["a", "1"], ["b", "2"]]

    def test_json_payload(self, tmp_path):
        path = tmp_path / "t.json"
        table_to_json(self.make_table(), path)
        import json

        payload = json.loads(path.read_text())
        assert payload["title"] == "T"
        assert payload["rows"][1] == {"k": "b", "v": 2}

    def test_exhibit_builders_registry(self):
        quick = exhibit_builders(include_slow=False)
        full = exhibit_builders(include_slow=True)
        assert set(quick) <= set(full)
        assert "fig18" in full and "fig18" not in quick

    def test_export_all_quick(self, tmp_path):
        written = export_all_exhibits(tmp_path, include_slow=False)
        names = {p.name for p in written}
        assert "fig4.csv" in names and "table1.json" in names
        assert all(p.stat().st_size > 0 for p in written)


class TestPersist:
    @pytest.mark.parametrize("scheme", ["prime", "interval", "prefix-2"])
    def test_round_trip_preserves_rows(self, tmp_path, scheme):
        documents = [parse_document(DOC), play(seed=2)]
        store = LabelStore.build(documents, scheme=scheme)
        path = tmp_path / "store.bin"
        written = save_store(store, path)
        assert written == path.stat().st_size > 0
        loaded = load_store(path)
        assert len(loaded) == len(store)
        for original, restored in zip(store.rows, loaded.rows):
            assert (original.doc_id, original.element_id) == (
                restored.doc_id, restored.element_id,
            )
            assert original.tag == restored.tag
            assert original.label == restored.label
            assert original.depth == restored.depth
            assert original.parent_id == restored.parent_id

    @pytest.mark.parametrize("scheme", ["prime", "interval", "prefix-2"])
    def test_loaded_store_answers_queries_identically(self, tmp_path, scheme):
        documents = [parse_document(DOC), play(seed=2)]
        store = LabelStore.build(documents, scheme=scheme)
        path = tmp_path / "store.bin"
        save_store(store, path)
        loaded = load_store(path)
        queries = (
            "/play//line",
            "/PLAY//SPEECH[2]",
            "/act//Following::line",
            "/SPEECH//Following-Sibling::SPEECH",
        )
        before = QueryEngine(store)
        after = QueryEngine(loaded)
        for query in queries:
            assert [r.element_id for r in before.evaluate(query)] == [
                r.element_id for r in after.evaluate(query)
            ], (scheme, query)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        with pytest.raises(QueryEvaluationError):
            load_store(path)

    def test_truncated_file_rejected(self, tmp_path):
        documents = [parse_document(DOC)]
        store = LabelStore.build(documents, scheme="interval")
        path = tmp_path / "store.bin"
        save_store(store, path)
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.raises(QueryEvaluationError):
            load_store(path)


class TestStreaming:
    def test_prime_matches_tree_labeling(self):
        text = serialize(play(seed=5))
        tree = parse_document(text)
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=False)
        scheme.label_tree(tree)
        streamed = list(stream_prime_labels(text))
        nodes = list(tree.iter_preorder())
        assert len(streamed) == len(nodes)
        for record, node in zip(streamed, nodes):
            assert record.tag == node.tag
            assert record.depth == node.depth
            assert record.label == scheme.label_of(node)

    def test_startend_matches_tree_labeling(self):
        text = serialize(play(seed=5))
        tree = parse_document(text)
        scheme = StartEndIntervalScheme().label_tree(tree)
        by_start = {
            scheme.label_of(node).start: node for node in tree.iter_preorder()
        }
        for record in stream_labels(text, "interval-startend"):
            node = by_start[record.label.start]
            assert scheme.label_of(node) == record.label
            assert node.tag == record.tag

    def test_dewey_matches_tree_labeling(self):
        text = serialize(play(seed=5))
        tree = parse_document(text)
        scheme = DeweyScheme().label_tree(tree)
        streamed = list(stream_labels(text, "dewey"))
        for record, node in zip(streamed, tree.iter_preorder()):
            assert record.label == scheme.label_of(node)

    def test_paths_are_root_anchored(self):
        records = list(stream_prime_labels(DOC))
        assert records[0].path == "/play"
        assert records[-1].path == "/play/act/scene/speech/line"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            list(stream_labels(DOC, scheme="prefix-2"))

    def test_streaming_is_lazy(self):
        iterator = stream_prime_labels(DOC)
        first = next(iterator)
        assert first.tag == "play"
