"""Unit tests for the order-sensitive axes (Section 4.3)."""

import pytest

from repro.order.axes import OrderedAxes
from repro.order.document import OrderedDocument
from repro.xmlkit.builder import element


@pytest.fixture
def paper_doc():
    """The paper's ordered example (Figure 8): a paper with title, authors."""
    root = element(
        "paper",
        element("title"),
        element("author", text="Jane"),
        element("author", text="Tom"),
        element("author", text="John"),
        element("year"),
    )
    return OrderedDocument(root)


@pytest.fixture
def axes(paper_doc):
    return OrderedAxes(paper_doc)


class TestFollowingPreceding:
    def test_following_excludes_descendants(self):
        doc = OrderedDocument(
            element("r", element("a", element("a1")), element("b", element("b1")))
        )
        axes = OrderedAxes(doc)
        a = doc.root.children[0]
        tags = [n.tag for n in axes.following(a)]
        assert tags == ["b", "b1"]  # a1 is a descendant, excluded

    def test_preceding_excludes_ancestors(self):
        doc = OrderedDocument(
            element("r", element("a", element("a1")), element("b"))
        )
        axes = OrderedAxes(doc)
        a1 = doc.root.children[0].children[0]
        tags = [n.tag for n in axes.preceding(a1)]
        assert tags == []  # r and a are ancestors; nothing else precedes

    def test_following_of_title(self, paper_doc, axes):
        title = paper_doc.root.children[0]
        assert [n.tag for n in axes.following(title)] == [
            "author", "author", "author", "year",
        ]

    def test_preceding_of_year(self, paper_doc, axes):
        year = paper_doc.root.children[-1]
        assert [n.tag for n in axes.preceding(year)] == [
            "title", "author", "author", "author",
        ]

    def test_results_in_document_order(self, paper_doc, axes):
        title = paper_doc.root.children[0]
        orders = [paper_doc.order_of(n) for n in axes.following(title)]
        assert orders == sorted(orders)


class TestSiblingAxes:
    def test_following_siblings(self, paper_doc, axes):
        first_author = paper_doc.root.children[1]
        tags = [n.tag for n in axes.following_siblings(first_author)]
        assert tags == ["author", "author", "year"]

    def test_preceding_siblings(self, paper_doc, axes):
        last_author = paper_doc.root.children[3]
        tags = [n.tag for n in axes.preceding_siblings(last_author)]
        assert tags == ["title", "author", "author"]

    def test_root_has_no_siblings(self, paper_doc, axes):
        assert axes.following_siblings(paper_doc.root) == []
        assert axes.preceding_siblings(paper_doc.root) == []

    def test_nested_levels_are_not_siblings(self):
        doc = OrderedDocument(element("r", element("a", element("x")), element("b")))
        axes = OrderedAxes(doc)
        x = doc.root.children[0].children[0]
        assert axes.following_siblings(x) == []


class TestPosition:
    def test_position_n(self, paper_doc, axes):
        authors = axes.descendants_by_tag(paper_doc.root, "author")
        second = axes.position(authors, 2)
        assert second.text == "Tom"

    def test_position_out_of_range(self, paper_doc, axes):
        authors = axes.descendants_by_tag(paper_doc.root, "author")
        with pytest.raises(IndexError):
            axes.position(authors, 9)

    def test_position_must_be_positive(self, axes):
        with pytest.raises(ValueError):
            axes.position([], 0)


class TestAfterUpdates:
    def test_insert_second_author_shifts_positions(self, paper_doc):
        """The paper's motivating update: a new second author pushes Tom and
        John to third and fourth place — without node relabeling."""
        axes = OrderedAxes(paper_doc)
        first_author = paper_doc.root.children[1]
        report = paper_doc.insert_after(first_author, tag="author")
        report.new_node.text = "Alice"
        authors = axes.descendants_by_tag(paper_doc.root, "author")
        assert [a.text for a in authors] == ["Jane", "Alice", "Tom", "John"]
        assert axes.position(authors, 2).text == "Alice"
        assert axes.position(authors, 3).text == "Tom"

    def test_axes_consistent_after_many_updates(self, paper_doc):
        axes = OrderedAxes(paper_doc)
        for index in range(4):
            paper_doc.insert_child(paper_doc.root, index, tag=f"note{index}")
        title = next(n for n in paper_doc.root.children if n.tag == "title")
        following = axes.following(title)
        expected = []
        seen_title = False
        for node in paper_doc.root.iter_preorder():
            if node.tag == "title":
                seen_title = True
                continue
            if seen_title:
                expected.append(node.tag)
        assert [n.tag for n in following] == expected
