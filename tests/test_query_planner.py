"""Unit tests for the cost-based step planner over synthetic statistics.

The planner is pure arithmetic over a :class:`StoreStatistics` snapshot,
so every decision boundary can be pinned with hand-built statistics —
no corpus, no timing.  The engine-facing surface (``--explain`` text,
``planner.pick.*`` metrics, plan recording) is covered at the bottom.
"""

import pytest

from repro.obs import metrics
from repro.query.ast import Axis, Query, Step
from repro.query.engine import QueryEngine
from repro.query.planner import Planner, QueryPlan, StepChoice
from repro.query.store import LabelStore, StoreStatistics
from repro.query.xpath import parse_query
from repro.xmlkit.parser import parse_document


def stats(
    doc_count=10,
    row_count=10_000,
    tag_totals=None,
    has_windows=True,
    ops_name="interval",
):
    return StoreStatistics(
        doc_count=doc_count,
        row_count=row_count,
        tag_totals=dict(tag_totals or {"line": 5_000, "act": 50}),
        has_windows=has_windows,
        ops_name=ops_name,
    )


class TestStepChoices:
    def setup_method(self):
        self.planner = Planner()

    def test_window_wins_on_heavy_descendant_steps(self):
        # Small context, huge candidate bucket: log-probe windows crush
        # the O(|ctx| x |cand|) scan and the sort-everything merge.
        step = Step(axis=Axis.DESCENDANT, tag="line")
        choice = self.planner.plan_step(stats(), step, context_size=5)
        assert choice.strategy == "window"
        assert choice.costs["window"] < choice.costs["scan"]
        assert choice.costs["window"] < choice.costs["merge"]

    def test_scan_wins_without_windows_on_tiny_contexts(self):
        step = Step(axis=Axis.DESCENDANT, tag="act")
        choice = self.planner.plan_step(
            stats(has_windows=False), step, context_size=1
        )
        assert choice.strategy == "scan"
        assert "window" not in choice.costs

    def test_merge_wins_on_large_contexts_without_windows(self):
        # |ctx| x |cand| scan cost explodes; merge stays linear.
        step = Step(axis=Axis.DESCENDANT, tag="line")
        choice = self.planner.plan_step(
            stats(has_windows=False), step, context_size=4_000
        )
        assert choice.strategy == "merge"

    def test_merge_never_priced_for_order_axes_or_positions(self):
        for step in (
            Step(axis=Axis.FOLLOWING, tag="line"),
            Step(axis=Axis.PARENT, tag="act"),
            Step(axis=Axis.DESCENDANT, tag="line", position=2),
        ):
            costs = self.planner.step_costs(stats(), step, context_size=100)
            assert "merge" not in costs, step

    def test_prime_order_key_penalty_steers_away_from_merge(self):
        # Same shape, but prime-scheme order keys cost an SC lookup:
        # merge (which sorts both sides) loses ground against windows.
        step = Step(axis=Axis.DESCENDANT, tag="line")
        plain = self.planner.step_costs(stats(), step, 200)
        prime = self.planner.step_costs(stats(ops_name="prime"), step, 200)
        assert prime["merge"] > plain["merge"]
        assert prime["window"] == plain["window"]  # windows skip order keys

    def test_context_size_changes_the_pick(self):
        # The planner runs per step at evaluation time: a selective early
        # step should flip later steps toward window probes.
        step = Step(axis=Axis.CHILD, tag="line")
        small = self.planner.plan_step(stats(), step, context_size=2)
        large = self.planner.plan_step(stats(has_windows=False), step, 5_000)
        assert small.strategy == "window"
        assert large.strategy == "merge"


class TestTwigRoute:
    def setup_method(self):
        self.planner = Planner()

    def test_eligibility(self):
        assert Planner.twig_eligible(parse_query("/a//b/c"))
        assert not Planner.twig_eligible(parse_query("/a//b[2]"))
        assert not Planner.twig_eligible(parse_query("/a//b[.='x']"))
        assert not Planner.twig_eligible(parse_query("/a/Following::b"))
        assert not Planner.twig_eligible(parse_query("/a/Parent::b"))

    def test_twig_cheaper_than_chain_on_long_selective_chains(self):
        # Prime-scheme order keys make every per-step sort expensive;
        # the one-pass twig semi-join never touches them.
        snapshot = stats(
            row_count=100_000,
            tag_totals={"a": 40_000, "b": 40_000, "c": 40_000},
            has_windows=False,
            ops_name="prime",
        )
        query = parse_query("/a//b//c")
        assert self.planner.twig_cost(snapshot, query) < self.planner.chain_cost(
            snapshot, query
        )

    def test_chain_cheaper_on_short_queries(self):
        snapshot = stats()
        query = parse_query("/act//line")
        assert self.planner.chain_cost(snapshot, query) < self.planner.twig_cost(
            snapshot, query
        )


class TestPlanSurface:
    DOC = "<play><act><line/><line/></act><act><line/></act></play>"

    def make(self, strategy="auto"):
        store = LabelStore.build([parse_document(self.DOC)], scheme="interval")
        return QueryEngine(store, strategy=strategy)

    def test_describe_lists_every_priced_alternative(self):
        choice = StepChoice(
            axis="descendant",
            tag="line",
            strategy="window",
            context_size=3,
            costs={"scan": 18.0, "window": 4.0, "merge": 28.0},
        )
        text = choice.describe()
        assert text.startswith("descendant::line -> window (")
        assert "merge=28" in text and "scan=18" in text and "window=4" in text

    def test_engine_records_plan_and_metrics(self):
        engine = self.make()
        with metrics.collecting() as collected:
            engine.evaluate("/play/act/line")
        plan = engine.last_plan
        assert plan is not None and plan.strategy == "auto"
        assert plan.twig is None or len(plan.steps) == 0
        picks = sum(
            collected.counter_value(f"planner.pick.{name}")
            for name in ("scan", "merge", "window", "twig")
        )
        assert picks >= 1

    def test_explain_output_shape(self):
        engine = self.make()
        text = engine.explain("/play//line[.='missing']")
        assert text.splitlines()[0] == "strategy: auto"
        assert "step 0:" in text

    def test_fixed_strategy_plans_record_their_degradations(self):
        # A merge engine on an order axis must report the scan fallback.
        engine = self.make(strategy="merge")
        engine.evaluate("/act/Following::line")
        assert [c.strategy for c in engine.last_plan.steps] == ["scan"]

    def test_statistics_snapshot_matches_store(self):
        engine = self.make()
        snapshot = engine.store.statistics()
        assert snapshot.doc_count == 1
        assert snapshot.row_count == 6
        assert snapshot.tag_totals["line"] == 3
        assert snapshot.has_windows
        assert snapshot.candidates_per_doc("line") == pytest.approx(3.0)
        assert snapshot.total_candidates("nothing") == 0
