"""Unit tests for optimization Opt3 (combine repeated paths, Figure 6)."""

from repro.labeling.pathcollapse import collapse_ratio, collapse_tree
from repro.xmlkit.builder import element


class TestCollapseTree:
    def test_figure6_book_example(self, book_tree):
        """Three book/author paths combine into one (Figure 6)."""
        collapsed = collapse_tree(book_tree)
        tags = [child.tag for child in collapsed.children]
        assert tags == ["title", "author"]
        author = collapsed.children[1]
        assert author.multiplicity == 3
        assert author.positions == [1, 2, 3]

    def test_node_count_shrinks(self, book_tree):
        collapsed = collapse_tree(book_tree)
        assert collapsed.node_count == 3  # book, title, author
        assert book_tree.stats().node_count == 5

    def test_distinct_shapes_not_merged(self):
        tree = element(
            "r",
            element("a", element("x")),
            element("a"),  # same tag, different shape: stays separate
        )
        collapsed = collapse_tree(tree)
        assert len(collapsed.children) == 2

    def test_nested_repetition_compounds(self):
        act = lambda: element("act", *[element("scene") for _ in range(4)])
        tree = element("play", act(), act(), act())
        collapsed = collapse_tree(tree)
        assert collapsed.node_count == 3  # play, act, scene
        assert collapsed.children[0].multiplicity == 3
        assert collapsed.children[0].children[0].multiplicity == 4

    def test_single_node(self):
        collapsed = collapse_tree(element("only"))
        assert collapsed.node_count == 1
        assert collapsed.multiplicity == 1

    def test_positions_record_sibling_indices(self):
        tree = element("r", element("x"), element("y"), element("x"))
        collapsed = collapse_tree(tree)
        x_group = next(c for c in collapsed.children if c.tag == "x")
        assert x_group.positions == [0, 2]

    def test_to_element_materializes_attributes(self, book_tree):
        materialized = collapse_tree(book_tree).to_element()
        author = materialized.children[1]
        assert author.attributes["repro:count"] == "3"
        assert author.attributes["repro:positions"] == "1,2,3"

    def test_to_element_labels_smaller(self, book_tree):
        from repro.labeling.prime import PrimeScheme

        full = PrimeScheme().label_tree(book_tree).max_label_bits()
        collapsed = PrimeScheme().label_tree(
            collapse_tree(book_tree).to_element()
        ).max_label_bits()
        assert collapsed <= full


class TestCollapseRatio:
    def test_zero_when_nothing_repeats(self):
        tree = element("r", element("a"), element("b", element("c")))
        assert collapse_ratio(tree) == 0.0

    def test_high_for_repetitive_documents(self, book_tree):
        assert collapse_ratio(book_tree) == 1.0 - 3 / 5

    def test_shakespeare_is_highly_repetitive(self):
        from repro.datasets.shakespeare import play

        assert collapse_ratio(play(seed=0)) > 0.5
