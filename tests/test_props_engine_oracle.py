"""Property tests: the label-only engine vs the tree-walking oracle.

Random documents × random queries × three schemes × two strategies — every
combination must return exactly the node set a direct tree walk computes.
This is the library's strongest end-to-end correctness statement.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.ast import Axis, Query, Step
from repro.query.engine import QueryEngine
from repro.query.naive import NaiveEvaluator
from repro.query.store import LabelStore
from repro.xmlkit.tree import XmlElement

TAGS = ["a", "b", "c", "d"]


@st.composite
def random_documents(draw):
    count = draw(st.integers(1, 3))
    documents = []
    for _ in range(count):
        size = draw(st.integers(1, 25))
        nodes = [XmlElement(draw(st.sampled_from(TAGS)))]
        for index in range(1, size):
            parent = nodes[draw(st.integers(0, index - 1))]
            nodes.append(parent.append(XmlElement(draw(st.sampled_from(TAGS)))))
        documents.append(nodes[0])
    return documents


_FIRST_AXES = [Axis.CHILD, Axis.DESCENDANT]
_LATER_AXES = list(Axis)


@st.composite
def random_queries(draw):
    steps = [
        Step(
            axis=draw(st.sampled_from(_FIRST_AXES)),
            tag=draw(st.sampled_from(TAGS + ["*"])),
            position=draw(st.one_of(st.none(), st.integers(1, 3))),
        )
    ]
    for _ in range(draw(st.integers(0, 3))):
        axis = draw(st.sampled_from(_LATER_AXES))
        steps.append(
            Step(
                axis=axis,
                tag=draw(st.sampled_from(TAGS + ["*"])),
                position=draw(st.one_of(st.none(), st.integers(1, 3))),
                from_descendants=draw(st.booleans())
                and axis
                in (
                    Axis.FOLLOWING,
                    Axis.PRECEDING,
                    Axis.FOLLOWING_SIBLING,
                    Axis.PRECEDING_SIBLING,
                ),
            )
        )
    return Query(steps=tuple(steps))


class TestEngineMatchesOracle:
    @given(random_documents(), random_queries())
    @settings(max_examples=60, deadline=None)
    def test_all_schemes_and_strategies_match_tree_walk(self, documents, query):
        oracle = NaiveEvaluator(documents)
        expected = {id(node) for node in oracle.evaluate(query)}
        for scheme in ("interval", "prime", "prefix-2"):
            store = LabelStore.build(documents, scheme=scheme)
            for strategy in ("scan", "merge"):
                engine = QueryEngine(store, strategy=strategy)
                actual = {id(row.node) for row in engine.evaluate(query)}
                assert actual == expected, (scheme, strategy, str(query))

    @given(random_documents())
    @settings(max_examples=30, deadline=None)
    def test_paper_query_shapes_match(self, documents):
        oracle = NaiveEvaluator(documents)
        store = LabelStore.build(documents, scheme="prime")
        engine = QueryEngine(store)
        for text in (
            "/a//b",
            "/a//b[2]",
            "/b//Following::c",
            "/c//Preceding::a",
            "/a//Following-Sibling::b",
            "/d/Parent::*",
            "/b/Ancestor::a",
        ):
            expected = {id(n) for n in oracle.evaluate(text)}
            actual = {id(row.node) for row in engine.evaluate(text)}
            assert actual == expected, text


class TestOracleBasics:
    def test_rejects_empty_collection(self):
        import pytest as _pytest

        with _pytest.raises(Exception):
            NaiveEvaluator([])

    def test_counts_simple_document(self):
        from repro.xmlkit.parser import parse_document

        oracle = NaiveEvaluator([parse_document("<a><b/><b/><c><b/></c></a>")])
        assert oracle.count("/a//b") == 3
        assert oracle.count("/a/b") == 2
        assert oracle.count("/c/b") == 1
