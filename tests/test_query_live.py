"""Tests for the live (updatable, queryable) collection."""

import pytest

from repro.errors import QueryEvaluationError
from repro.query.live import LiveCollection
from repro.xmlkit.parser import parse_document

DOC_A = "<play><act><speech><line/></speech></act><act><speech><line/><line/></speech></act></play>"
DOC_B = "<book><title/><author>Jane</author><author>John</author></book>"


@pytest.fixture
def collection():
    return LiveCollection([parse_document(DOC_A), parse_document(DOC_B)])


class TestQueries:
    def test_query_across_documents(self, collection):
        assert collection.count("/play//line") == 3
        assert collection.count("/book/author") == 2

    def test_text_predicate(self, collection):
        assert collection.count("/book/author[.='John']") == 1

    def test_empty_collection_answers_empty(self):
        # Legal since sharding: a shard that owns no documents still
        # serves queries (they just match nothing) and accepts adds.
        live = LiveCollection([])
        assert live.count("//*") == 0
        assert live.query("//line") == []
        live.add_document(parse_document(DOC_A))
        assert live.count("/play//line") == 3

    def test_merge_strategy_supported(self):
        live = LiveCollection([parse_document(DOC_A)], strategy="merge")
        assert live.count("/play//line") == 3


class TestUpdates:
    def test_insert_visible_to_next_query(self, collection):
        before = collection.count("/play//line")
        speech = collection.documents[0].find_by_tag("SPEECH".lower())[0]
        collection.insert_child(speech, 0, tag="line")
        assert collection.count("/play//line") == before + 1

    def test_update_costs_accumulate(self, collection):
        play = collection.documents[0]
        collection.insert_child(play, 0, tag="prologue")
        collection.insert_after(play.children[0], tag="interlude")
        assert collection.total_update_cost > 0
        assert collection.check()

    def test_delete_visible(self, collection):
        book = collection.documents[1]
        collection.delete(book.find_by_tag("author")[0])
        assert collection.count("/book/author") == 1

    def test_foreign_node_rejected(self, collection):
        stranger = parse_document("<x><y/></x>")
        with pytest.raises(QueryEvaluationError):
            collection.insert_child(stranger, 0)

    def test_add_document(self, collection):
        index = collection.add_document(parse_document("<play><act/></play>"))
        assert index == 2
        assert collection.count("/play//act") == 3

    def test_engine_cached_between_queries(self, collection):
        first = collection.engine
        collection.count("/book/title")
        assert collection.engine is first
        # Inserts patch the cached engine in place — no rebuild, and the
        # new node is immediately visible.
        collection.insert_child(collection.documents[1], 0, tag="isbn")
        assert collection.engine is first
        assert collection.count("/book/isbn") == 1

    def test_compact_preserves_results(self, collection):
        play = collection.documents[0]
        for _ in range(4):
            collection.insert_child(play, 0, tag="tmp")
        for node in [n for n in play.children if n.tag == "tmp"]:
            collection.delete(node)
        baseline = collection.count("/play//line")
        collection.compact()
        assert collection.count("/play//line") == baseline
        assert collection.check()

    def test_mixed_session_order_consistent(self, collection):
        import random

        rng = random.Random(12)
        for step in range(25):
            docs = collection.documents
            root = rng.choice(docs)
            nodes = list(root.iter_preorder())
            parent = rng.choice(nodes)
            collection.insert_child(
                parent, rng.randint(0, len(parent.children)), tag=f"s{step}"
            )
        assert collection.check()
        # order axis still correct through the store
        rows = collection.query("/play//act[1]/Following::act")
        assert all(row.tag == "act" for row in rows)


class TestDocumentLookup:
    def test_index_lookup_from_any_depth(self, collection):
        for index, root in enumerate(collection.documents):
            for node in root.iter_preorder():
                assert collection.document_index_of(node) == index
                assert collection.document_of(node).root is root

    def test_lookup_tracks_added_documents(self, collection):
        extra = parse_document("<z><zz/></z>")
        index = collection.add_document(extra)
        assert collection.document_index_of(extra.children[0]) == index

    def test_lookup_covers_nodes_created_by_updates(self, collection):
        play = collection.documents[0]
        collection.insert_child(play, 0, tag="fresh")
        assert collection.document_index_of(play.children[0]) == 0

    def test_foreign_node_raises(self, collection):
        with pytest.raises(QueryEvaluationError):
            collection.document_index_of(parse_document("<lone/>"))

    def test_duplicate_document_rejected_at_build(self):
        document = parse_document(DOC_A)
        with pytest.raises(QueryEvaluationError):
            LiveCollection([document, document])


class TestAddDocumentValidation:
    def test_attached_root_rejected(self, collection):
        attached = collection.documents[0].children[0]
        with pytest.raises(QueryEvaluationError):
            collection.add_document(attached)

    def test_duplicate_rejected(self, collection):
        with pytest.raises(QueryEvaluationError):
            collection.add_document(collection.documents[1])

    def test_divergent_group_size_rejected(self, collection):
        with pytest.raises(QueryEvaluationError) as excinfo:
            collection.add_document(parse_document("<solo/>"), group_size=9)
        assert "group_size" in str(excinfo.value)

    def test_matching_group_size_accepted(self, collection):
        index = collection.add_document(parse_document("<solo/>"), group_size=5)
        assert index == 2

    def test_added_document_is_updatable(self, collection):
        extra = parse_document("<z/>")
        collection.add_document(extra)
        collection.insert_child(extra, 0, tag="kid")
        assert collection.count("/z/kid") == 1
        assert collection.check()


class TestEngineCacheMaintenance:
    """Node mutations patch the cached engine; wholesale changes rebuild."""

    def mutate_insert_child(self, collection):
        collection.insert_child(collection.documents[0], 0)

    def mutate_insert_before(self, collection):
        collection.insert_before(collection.documents[0].children[0])

    def mutate_insert_after(self, collection):
        collection.insert_after(collection.documents[0].children[0])

    def mutate_delete(self, collection):
        collection.delete(collection.documents[1].children[0])

    def mutate_add_document(self, collection):
        collection.add_document(parse_document("<fresh/>"))

    def mutate_compact(self, collection):
        collection.compact()

    @pytest.mark.parametrize(
        "mutation",
        ["insert_child", "insert_before", "insert_after", "delete"],
    )
    def test_node_mutations_patch_in_place(self, collection, mutation):
        from repro.obs import metrics

        cached = collection.engine
        with metrics.collecting() as collected:
            getattr(self, f"mutate_{mutation}")(collection)
        # no rebuild on the mutation hot path ...
        assert collection.engine is cached
        assert collected.counter_value("live.engine_rebuilds") == 0
        assert collected.counter_value("live.store_patches") == 1
        # ... and the patched engine answers correctly
        assert collection.count("//*") == sum(
            root.stats().node_count for root in collection.documents
        )

    @pytest.mark.parametrize("mutation", ["add_document", "compact"])
    def test_wholesale_mutations_invalidate(self, collection, mutation):
        cached = collection.engine
        getattr(self, f"mutate_{mutation}")(collection)
        assert collection.engine is not cached
        assert collection.count("//*") == sum(
            root.stats().node_count for root in collection.documents
        )

    def test_queries_alone_never_invalidate(self, collection):
        cached = collection.engine
        collection.count("//line")
        collection.count("/book/author")
        collection.document_index_of(collection.documents[0])
        assert collection.engine is cached

class TestCapacityContext:
    """The collection stamps CapacityError with the owning document index."""

    def _collection(self):
        return LiveCollection(
            [parse_document("<a><b/></a>"), parse_document("<c><d/></c>")]
        )

    def test_insert_paths_stamp_the_document_index(self, monkeypatch):
        from repro.errors import CapacityError

        collection = self._collection()

        def exhausted(*args, **kwargs):
            raise CapacityError("full", group=0, hint="compact()")

        monkeypatch.setattr(collection._ordered[1], "insert_child", exhausted)
        target = collection.documents[1]
        with pytest.raises(CapacityError) as info:
            collection.insert_child(target, 0)
        assert info.value.document == 1
        assert info.value.group == 0

    def test_compact_stamps_the_failing_document(self, monkeypatch):
        from repro.errors import CapacityError

        collection = self._collection()

        def exhausted():
            raise CapacityError("full", group=2)

        monkeypatch.setattr(collection._ordered[1], "compact", exhausted)
        with pytest.raises(CapacityError) as info:
            collection.compact()
        assert info.value.document == 1

    def test_existing_document_attribution_is_preserved(self, monkeypatch):
        from repro.errors import CapacityError

        collection = self._collection()

        def exhausted(*args, **kwargs):
            raise CapacityError("full", document=7)

        monkeypatch.setattr(collection._ordered[0], "insert_before", exhausted)
        node = collection.documents[0].children[0]
        with pytest.raises(CapacityError) as info:
            collection.insert_before(node)
        assert info.value.document == 7  # never overwritten
