"""Unit tests for repro.primes.sieve."""

import pytest

from repro.primes.sieve import (
    nth_prime,
    primes_below,
    primes_first_n,
    segmented_sieve,
    sieve_of_eratosthenes,
)

FIRST_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]


class TestSieveTable:
    def test_small_table_flags(self):
        table = sieve_of_eratosthenes(10)
        assert [i for i, flag in enumerate(table) if flag] == [2, 3, 5, 7]

    def test_zero_and_one_are_not_prime(self):
        table = sieve_of_eratosthenes(1)
        assert table[0] is False and table[1] is False

    def test_negative_limit_gives_empty_table(self):
        assert sieve_of_eratosthenes(-5) == [False]

    def test_limit_itself_included(self):
        assert sieve_of_eratosthenes(13)[13] is True

    def test_table_length(self):
        assert len(sieve_of_eratosthenes(100)) == 101


class TestPrimesBelow:
    def test_first_primes(self):
        assert primes_below(48) == FIRST_PRIMES

    def test_exclusive_upper_bound(self):
        assert primes_below(13)[-1] == 11

    def test_empty_for_tiny_limits(self):
        assert primes_below(2) == []
        assert primes_below(0) == []

    def test_count_below_10000(self):
        # pi(10^4) = 1229, a standard checkpoint.
        assert len(primes_below(10_000)) == 1229


class TestPrimesFirstN:
    def test_first_fifteen(self):
        assert primes_first_n(15) == FIRST_PRIMES

    def test_zero_and_negative(self):
        assert primes_first_n(0) == []
        assert primes_first_n(-3) == []

    def test_large_n_crosses_bound_growth(self):
        primes = primes_first_n(10_000)
        assert len(primes) == 10_000
        assert primes[-1] == 104_729  # the 10,000th prime

    def test_strictly_increasing(self):
        primes = primes_first_n(500)
        assert all(a < b for a, b in zip(primes, primes[1:]))


class TestNthPrime:
    @pytest.mark.parametrize("n, expected", [(1, 2), (2, 3), (6, 13), (25, 97), (100, 541)])
    def test_known_values(self, n, expected):
        assert nth_prime(n) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            nth_prime(0)


class TestSegmentedSieve:
    def test_matches_plain_sieve_on_range(self):
        assert list(segmented_sieve(50, 200)) == [
            p for p in primes_below(200) if p >= 50
        ]

    def test_covers_from_two(self):
        assert list(segmented_sieve(0, 30)) == primes_below(30)

    def test_empty_range(self):
        assert list(segmented_sieve(100, 100)) == []
        assert list(segmented_sieve(100, 50)) == []

    def test_high_window(self):
        # Primes in [10^6, 10^6 + 100): a known short list.
        assert list(segmented_sieve(1_000_000, 1_000_100)) == [
            1_000_003, 1_000_033, 1_000_037, 1_000_039, 1_000_081, 1_000_099,
        ]

    def test_wide_high_window_matches_reference_sieve(self):
        """The bytearray slice-assignment span must agree with a plain
        reference sieve over a full 10^4-wide window at 10^6 (regression
        for the slice-stride rewrite of the per-multiple marking loop)."""
        low, high = 10**6, 10**6 + 10**4
        reference = [p for p in primes_below(high) if p >= low]
        assert list(segmented_sieve(low, high)) == reference

    def test_base_prime_square_beyond_window(self):
        # A window narrower than the gap to the next base-prime square:
        # start >= high for the largest base primes must not mark anything.
        assert list(segmented_sieve(120, 127)) == []
        assert list(segmented_sieve(126, 132)) == [127, 131]
