"""Supervision state machine: restart, quarantine, and hang detection.

These tests run real worker processes — the supervision loop is only
meaningful across a genuine process boundary (SIGKILL, pipe EOF, a
handler wedged in a sleep).  Policies use ``jitter=0.0`` so backoff
delays are exact and the tests never race their own timeouts.
"""

import time

import pytest

from repro.errors import ShardUnavailableError
from repro.resilient.policy import RetryPolicy
from repro.shard import HealthPolicy, ShardState, ShardedCollection
from repro.xmlkit.parser import parse_document

DOCS = [
    "<r><a><b/></a><c/></r>",
    "<r><x/><y><z/></y></r>",
    "<r><m/><n/></r>",
    "<r><p><q/></p></r>",
]

# No proactive heartbeats (interval parked at a minute) so each test
# exercises exactly one detection path; restarts retry every 20ms.
FAST = HealthPolicy(
    heartbeat_interval=60.0,
    restart_budget=3,
    restart=RetryPolicy(
        max_attempts=4, base_delay=0.02, max_delay=0.05, jitter=0.0, seed=0
    ),
)


def make_service(root, **serving):
    documents = [parse_document(xml) for xml in DOCS]
    serving.setdefault("policy", FAST)
    return ShardedCollection.create(root / "store", documents, shards=2, **serving)


def drive(service, want, timeout=15.0):
    """Tick the supervisor until a ``want`` event shows up (or fail)."""
    deadline = time.monotonic() + timeout
    events = []
    while time.monotonic() < deadline:
        events.extend(service.tick())
        if any(event[0] == want for event in events):
            return events
        time.sleep(0.01)
    raise AssertionError(f"no {want!r} event within {timeout}s; saw {events}")


def test_killed_worker_restarts_through_recovery(tmp_path):
    with make_service(tmp_path) as service:
        shard_id, _ = service.doc_map.to_local(0)
        ack = service.insert_child(0, parent=0, index=0, tag="w")
        assert ack["status"] == "applied" and ack["last_seq"] == 1

        service.kill_worker(shard_id)
        events = drive(service, "restarted")
        restarts = [e for e in events if e[0] == "restarted"]
        # The restart handshake re-establishes the exact durable
        # watermark: the killed worker had acked seq 1, so recovery
        # must report seq 1 — nothing lost, nothing replayed twice.
        assert restarts == [("restarted", shard_id, 1)]
        assert service.supervisor.state_of(shard_id) is ShardState.UP
        assert service.supervisor.health(shard_id).restarts == 1

        assert service.settle(timeout=10.0)
        result = service.query("//w")
        assert result.complete and [r.tag for r in result.rows] == ["w"]


def test_crash_looper_is_quarantined_and_names_its_budget(tmp_path):
    # ``crash_after_appends:0`` poisons every WAL append: the worker
    # dies unacked on the first mutation and again on every restart's
    # redo replay — a deterministic crash loop.
    with make_service(
        tmp_path, fault_spec="crash_after_appends:0", mutation_policy="buffer"
    ) as service:
        shard_id, _ = service.doc_map.to_local(0)
        ack = service.insert_child(0, parent=0, index=0, tag="w")
        assert ack == {"status": "pending", "shard": shard_id}

        events = drive(service, "quarantined")
        assert any(e == ("quarantined", shard_id, 0) for e in events)
        assert service.supervisor.state_of(shard_id) is ShardState.QUARANTINED
        health = service.supervisor.health(shard_id)
        assert health.restarts == FAST.restart_budget
        assert "restart budget" in (health.quarantine_reason or "")

        # Settle must give up (quarantine is terminal), and the other
        # shard must be untouched by its neighbour's poison.
        assert not service.settle(timeout=2.0)
        other = next(s for s in service.supervisor.shard_ids if s != shard_id)
        assert service.supervisor.state_of(other) is ShardState.UP

        # Satellite 1: routing to the quarantined shard refuses with the
        # shard id and the restart-budget state in the message itself.
        with pytest.raises(ShardUnavailableError) as excinfo:
            service.insert_child(0, parent=0, index=1, tag="x")
        message = str(excinfo.value)
        assert f"shard {shard_id}" in message
        assert "quarantined" in message
        assert (
            f"restart budget {FAST.restart_budget}/{FAST.restart_budget} spent"
            in message
        )
        assert "shard-status" in message  # the operator hint


def test_hung_worker_is_detected_killed_and_restarted(tmp_path):
    policy = HealthPolicy(
        heartbeat_interval=0.05,
        heartbeat_timeout=0.2,
        max_missed_heartbeats=2,
        restart_budget=3,
        restart=RetryPolicy(
            max_attempts=4, base_delay=0.02, max_delay=0.05, jitter=0.0, seed=0
        ),
    )
    with make_service(tmp_path, policy=policy) as service:
        shard_id = service.supervisor.shard_ids[0]
        # Fire-and-forget: the worker wedges inside the handler, so its
        # control pipe backs up exactly like a deadlocked process.
        service.supervisor.send(shard_id, "stall", {"seconds": 30.0})

        events = drive(service, "restarted")
        assert any(e[0] == "hung" and e[1] == shard_id for e in events)
        assert service.supervisor.state_of(shard_id) is ShardState.UP
        assert service.supervisor.health(shard_id).restarts == 1
        assert service.settle(timeout=10.0)


def test_served_requests_reset_the_crash_loop_budget(tmp_path):
    with make_service(tmp_path) as service:
        shard_id, _ = service.doc_map.to_local(0)
        # Two kill/recover cycles with a served request in between: the
        # budget meters *consecutive* failures, so neither cycle brings
        # the shard near quarantine.
        for expected_restarts in (1, 2):
            service.kill_worker(shard_id)
            drive(service, "restarted")
            assert service.settle(timeout=10.0)
            assert service.query("//c").complete
            health = service.supervisor.health(shard_id)
            assert health.restarts == expected_restarts
            assert health.consecutive_failures == 0
        assert service.supervisor.state_of(shard_id) is ShardState.UP
