"""Format-v3 regression suite: the serialization bugfix sweep.

Three fixes ride the varint generation and each gets pinned here:

1. the legacy snapshot writer's ``>H`` length field silently capped
   integers at 64 KiB and escaped a bare ``struct.error`` past it — now a
   typed :class:`SnapshotCorruptError`, and format v3 removes the limit;
2. the Opt2 leaf counter is keyed by parent label *value* and carried
   through snapshot/restore, so a restored scheme issues the same
   power-of-two self-labels as a never-snapshotted twin;
3. cross-version reads: v2 stores/snapshots and v1 WALs written by older
   code must load byte-for-byte with the current readers, while every
   writer emits v3 — and v3 must actually be smaller.
"""

import random

import pytest

from repro.durable import DurableCollection, collection_fingerprint, recover
from repro.durable import wal as wal_module
from repro.durable.recovery import WAL_NAME, snapshot_path
from repro.durable.snapshot import (
    _write_int,
    read_snapshot,
    restore_collection,
    snapshot_bytes,
    write_snapshot,
)
from repro.durable.wal import WriteAheadLog, scan_wal, wal_header
from repro.errors import SnapshotCorruptError
from repro.labeling.codec import read_uvarint
from repro.labeling.prime import PrimeLabel, PrimeScheme
from repro.query.live import LiveCollection
from repro.query.persist import load_store, save_store
from repro.xmlkit.builder import element
from repro.xmlkit.parser import parse_document

DOC = "<r><a><a1/><a2/></a><b/><c/></r>"

#: An integer whose big-endian encoding exceeds the legacy 65535-byte
#: ``>H`` length field (bugfix 1's trigger).
HUGE = (1 << (65_540 * 8)) - 7


def build_collection(churn=10):
    collection = LiveCollection([parse_document(DOC)], group_size=4)
    rng = random.Random(5)
    for _ in range(churn):
        root = collection.documents[0]
        target = rng.choice(list(root.iter_preorder()))
        collection.insert_child(target, rng.randint(0, len(target.children)))
    return collection


class TestLegacyIntGuard:
    """Bugfix 1: the 64 KiB ``>H`` ceiling fails typed, and v3 removes it."""

    def test_legacy_writer_raises_typed_error(self):
        with pytest.raises(SnapshotCorruptError, match="65535"):
            _write_int([], HUGE)

    def test_legacy_writer_still_takes_the_limit_itself(self):
        out = []
        _write_int(out, int.from_bytes(b"\xff" * 0xFFFF, "big"))
        assert len(b"".join(out)) == 2 + 0xFFFF

    def test_huge_label_snapshot_v2_rejected_v3_round_trips(self, tmp_path):
        collection = build_collection(churn=2)
        document = collection.ordered_documents[0]
        leaf = document.root.children[-1]
        document.scheme._set_label(leaf, PrimeLabel(value=HUGE, self_label=HUGE))
        # The legacy format cannot hold this label — and must say so with
        # a typed error, not let struct.error escape.
        with pytest.raises(SnapshotCorruptError, match="65535"):
            snapshot_bytes(collection, version=2)
        # Format v3 has no per-field ceiling below the anti-flood cap.
        path = tmp_path / "huge.rpsn"
        write_snapshot(collection, path, version=3)
        state = read_snapshot(path)
        assert any(
            value == HUGE for value, _self in state.documents[0].labels
        )


class TestLeafCounterRestore:
    """Bugfix 2: Opt2 leaf counters keyed by parent label value survive
    export/restore, so a restored scheme's future power-of-two leaf labels
    match a never-exported twin's."""

    @staticmethod
    def _tree():
        return element(
            "r", element("a", element("x"), element("y")), element("b")
        )

    def test_counters_round_trip_through_export(self):
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=True)
        scheme.label_tree(self._tree())
        generator_state, leaf_counters = scheme.export_state()
        assert leaf_counters  # Opt2 issued at least one leaf ordinal
        restored = PrimeScheme(reserved_primes=0, power2_leaves=True)
        twin_tree = self._tree()
        labels = [
            (scheme.label_of(n).value, scheme.label_of(n).self_label)
            for n in scheme.root.iter_preorder()
        ]
        restored.restore_state(twin_tree, labels, generator_state, leaf_counters)
        assert tuple(sorted(restored._leaf_counter.items())) == leaf_counters

    def test_restored_scheme_matches_never_exported_twin(self):
        original = PrimeScheme(reserved_primes=0, power2_leaves=True)
        original.label_tree(self._tree())
        generator_state, leaf_counters = original.export_state()
        restored = PrimeScheme(reserved_primes=0, power2_leaves=True)
        restored.restore_state(
            self._tree(),
            [
                (original.label_of(n).value, original.label_of(n).self_label)
                for n in original.root.iter_preorder()
            ],
            generator_state,
            leaf_counters,
        )
        # Identical post-restore insertions must produce identical labels:
        # the counter keeps each parent's next leaf ordinal, so a restore
        # that dropped it would hand out 2**1 again.
        for scheme in (original, restored):
            scheme.insert_leaf(scheme.root.children[0], tag="late")
        late_a = original.label_of(original.root.children[0].children[-1])
        late_b = restored.label_of(restored.root.children[0].children[-1])
        assert late_a == late_b

    def test_restore_without_counters_is_legacy_behaviour(self):
        """Snapshots written before the counter section restore with empty
        counters — the documented legacy semantics, not an error."""
        original = PrimeScheme(reserved_primes=0, power2_leaves=True)
        original.label_tree(self._tree())
        generator_state, _ = original.export_state()
        restored = PrimeScheme(reserved_primes=0, power2_leaves=True)
        restored.restore_state(
            self._tree(),
            [
                (original.label_of(n).value, original.label_of(n).self_label)
                for n in original.root.iter_preorder()
            ],
            generator_state,
        )
        assert restored._leaf_counter == {}


class TestCrossVersionReads:
    """Bugfix 3 + tentpole: old files readable, new files smaller."""

    def test_v2_snapshot_restores_identically(self, tmp_path):
        collection = build_collection()
        old, new = tmp_path / "v2.rpsn", tmp_path / "v3.rpsn"
        write_snapshot(collection, old, version=2)
        write_snapshot(collection, new, version=3)
        assert old.read_bytes()[4] == 2
        assert new.read_bytes()[4] == 3
        from_old = restore_collection(read_snapshot(old))
        from_new = restore_collection(read_snapshot(new))
        assert collection_fingerprint(from_old) == collection_fingerprint(from_new)

    def test_v2_store_loads_with_current_reader(self, tmp_path):
        collection = build_collection()
        store = collection.engine.store
        old, new = tmp_path / "v2.rpls", tmp_path / "v3.rpls"
        save_store(store, old, version=2)
        save_store(store, new)  # default writer: v3
        assert old.read_bytes()[4] == 2
        assert new.read_bytes()[4] == 3
        expected = [
            (row.doc_id, row.element_id, row.tag, row.label) for row in store.rows
        ]
        for path in (old, new):
            loaded = load_store(path)
            assert [
                (row.doc_id, row.element_id, row.tag, row.label)
                for row in loaded.rows
            ] == expected

    def test_v1_wal_is_adopted_and_replayed(self, tmp_path):
        path = tmp_path / "old.rpwl"
        wal = WriteAheadLog(path, fsync="never", version=1)
        ops = [
            {"op": "insert_child", "doc": 0, "parent": 3, "index": 1, "tag": "x"},
            {"op": "delete", "doc": 0, "node": 7},
        ]
        for op in ops:
            wal.append(op)
        wal.close()
        assert path.read_bytes()[:5] == wal_header(1)
        scan = scan_wal(path)
        assert [record.op for record in scan.records] == ops
        # Reopening adopts the file's version: appends stay v1-decodable.
        reopened = WriteAheadLog(path, fsync="never")
        assert reopened.version == 1
        reopened.append({"op": "compact"})
        reopened.close()
        assert len(scan_wal(path).records) == 3

    def test_v2_collection_opens_with_current_code(self, tmp_path):
        col = DurableCollection.create(
            tmp_path / "col", [parse_document(DOC)], format_version=2
        )
        col.insert_child(col.documents[0], 0, tag="n")
        fingerprint = collection_fingerprint(col.live)
        col.close()
        assert snapshot_path(tmp_path / "col", 1).read_bytes()[4] == 2
        assert (tmp_path / "col" / WAL_NAME).read_bytes()[:5] == wal_header(1)
        reopened = DurableCollection.open(tmp_path / "col")
        assert collection_fingerprint(reopened.live) == fingerprint
        reopened.close()

    def test_v2_collection_recovers_byte_identically(self, tmp_path):
        col = DurableCollection.create(
            tmp_path / "col", [parse_document(DOC)], format_version=2, fsync="always"
        )
        rng = random.Random(2)
        for _ in range(8):
            target = rng.choice(list(col.documents[0].iter_preorder()))
            col.insert_child(target, rng.randint(0, len(target.children)))
        fingerprint = collection_fingerprint(col.live)
        # Crash: abandon without close; recovery replays the v1 WAL.
        recovered = recover(tmp_path / "col")
        assert collection_fingerprint(recovered.collection) == fingerprint

    def test_v3_is_the_default_format(self, tmp_path):
        col = DurableCollection.create(tmp_path / "col", [parse_document(DOC)])
        col.close()
        assert snapshot_path(tmp_path / "col", 1).read_bytes()[4] == 3
        assert (tmp_path / "col" / WAL_NAME).read_bytes()[:5] == wal_header(3)

    def test_checkpoint_upgrades_v2_snapshots(self, tmp_path):
        col = DurableCollection.create(
            tmp_path / "col", [parse_document(DOC)], format_version=2
        )
        col.insert_child(col.documents[0], 0)
        col.close()
        reopened = DurableCollection.open(tmp_path / "col")
        generation = reopened.checkpoint()
        reopened.close()
        assert snapshot_path(tmp_path / "col", generation).read_bytes()[4] == 3


class TestV3IsSmaller:
    """The point of the tentpole: deterministic size reductions."""

    def test_snapshot_shrinks(self):
        collection = build_collection(churn=20)
        v2 = snapshot_bytes(collection, version=2)
        v3 = snapshot_bytes(collection, version=3)
        assert len(v3) < len(v2)

    def test_store_shrinks(self, tmp_path):
        collection = build_collection(churn=20)
        store = collection.engine.store
        old, new = tmp_path / "v2.rpls", tmp_path / "v3.rpls"
        save_store(store, old, version=2)
        save_store(store, new, version=3)
        assert new.stat().st_size < old.stat().st_size

    def test_wal_payloads_shrink(self):
        ops = [
            {"op": "insert_child", "doc": 0, "parent": 3, "index": 1, "tag": "x"},
            {"op": "insert_before", "doc": 1, "ref": 9, "tag": "scene"},
            {"op": "insert_after", "doc": 1, "ref": 9, "tag": "scene"},
            {"op": "delete", "doc": 0, "node": 7},
            {"op": "compact"},
        ]
        for op in ops:
            v1 = wal_module._encode_payload(op, 1)
            v3 = wal_module._encode_payload(op, 3)
            assert len(v3) < len(v1)
            assert wal_module._decode_payload(v3, 3) == op
            assert wal_module._decode_payload(v1, 1) == op

    def test_unknown_op_shapes_fall_back_to_json(self):
        odd = {"op": "insert_child", "doc": 0, "parent": 3, "index": 1,
               "tag": "x", "extra": True}
        payload = wal_module._encode_payload(odd, 3)
        assert payload[0] == 0  # JSON-fallback opcode
        assert wal_module._decode_payload(payload, 3) == odd

    def test_varint_labels_decode_from_snapshot_blob(self):
        """Spot-check the v3 wire layout: the first label field after the
        preorder count is a plain uvarint of the root's label value."""
        import struct

        collection = LiveCollection([parse_document("<r><a/><b/></r>")])
        blob = snapshot_bytes(collection, version=3)
        document = collection.ordered_documents[0]
        root_value = document.label_of(document.root).value
        # Anchor on the 20-byte generator-state struct (nonzero once primes
        # were issued, so the match is unique); the 4-byte preorder node
        # count follows it, then the root's label value as a uvarint.
        generator = struct.pack(">IIIQ", *document.scheme._generator.state())
        offset = blob.index(generator) + len(generator) + 4
        value, _end = read_uvarint(blob, offset)
        assert value == root_value
