"""Tests for tree reconstruction from label sets — the determinism oracle."""

import pytest

from repro.errors import LabelingError
from repro.labeling.dewey import DeweyScheme
from repro.labeling.interval import StartEndIntervalScheme, XissIntervalScheme
from repro.labeling.prefix import Bits, Prefix1Scheme, Prefix2Scheme
from repro.labeling.prime import PrimeLabel, PrimeScheme
from repro.labeling.reconstruct import (
    reconstruct_from_dewey,
    reconstruct_from_intervals,
    reconstruct_from_prefix,
    reconstruct_from_prime,
)
from repro.order.document import OrderedDocument


def tagged_labels(scheme, root):
    return [(node.tag, scheme.label_of(node)) for node in root.iter_preorder()]


def shapes_equal(a, b) -> bool:
    return a.tag == b.tag and len(a.children) == len(b.children) and all(
        shapes_equal(x, y) for x, y in zip(a.children, b.children)
    )


class TestPrimeReconstruction:
    def test_round_trip_original_scheme(self, any_tree):
        scheme = PrimeScheme(reserved_primes=0, power2_leaves=False)
        scheme.label_tree(any_tree)
        rebuilt = reconstruct_from_prime(tagged_labels(scheme, any_tree))
        assert shapes_equal(rebuilt, any_tree)

    def test_shuffled_input_order_irrelevant(self, paper_tree):
        import random

        scheme = PrimeScheme(reserved_primes=0, power2_leaves=False)
        scheme.label_tree(paper_tree)
        labels = tagged_labels(scheme, paper_tree)
        random.Random(3).shuffle(labels)
        rebuilt = reconstruct_from_prime(labels)
        assert shapes_equal(rebuilt, paper_tree)

    def test_opt2_with_sc_table_recovers_order(self, any_tree):
        # structure from labels + order from the SC table: the paper's full
        # division of labour.  (OrderedDocument uses the original scheme.)
        document = OrderedDocument(any_tree)
        labels = tagged_labels(document.scheme, any_tree)
        rebuilt = reconstruct_from_prime(labels, sc_table=document.sc_table)
        assert shapes_equal(rebuilt, any_tree)

    def test_order_recovery_after_updates(self, paper_tree):
        document = OrderedDocument(paper_tree)
        document.insert_child(paper_tree, 1, tag="inserted")
        document.insert_child(paper_tree.children[0], 0, tag="front")
        labels = tagged_labels(document.scheme, paper_tree)
        rebuilt = reconstruct_from_prime(labels, sc_table=document.sc_table)
        assert shapes_equal(rebuilt, paper_tree)

    def test_missing_parent_rejected(self):
        labels = [("root", PrimeLabel(value=1, self_label=1)),
                  ("orphan", PrimeLabel(value=6, self_label=3))]
        with pytest.raises(LabelingError):
            reconstruct_from_prime(labels)

    def test_duplicate_label_rejected(self):
        labels = [("a", PrimeLabel(value=1, self_label=1)),
                  ("b", PrimeLabel(value=1, self_label=1))]
        with pytest.raises(LabelingError):
            reconstruct_from_prime(labels)

    def test_wrong_label_type_rejected(self):
        with pytest.raises(LabelingError):
            reconstruct_from_prime([("a", (1, 2))])


class TestIntervalReconstruction:
    @pytest.mark.parametrize("scheme_class", [XissIntervalScheme, StartEndIntervalScheme])
    def test_round_trip(self, scheme_class, any_tree):
        scheme = scheme_class().label_tree(any_tree)
        rebuilt = reconstruct_from_intervals(tagged_labels(scheme, any_tree))
        assert shapes_equal(rebuilt, any_tree)

    def test_wrong_type_rejected(self):
        with pytest.raises(LabelingError):
            reconstruct_from_intervals([("a", Bits.empty())])


class TestPrefixReconstruction:
    @pytest.mark.parametrize("scheme_class", [Prefix1Scheme, Prefix2Scheme])
    def test_round_trip(self, scheme_class, any_tree):
        scheme = scheme_class().label_tree(any_tree)
        rebuilt = reconstruct_from_prefix(tagged_labels(scheme, any_tree))
        assert shapes_equal(rebuilt, any_tree)

    def test_duplicate_rejected(self):
        labels = [("r", Bits.empty()), ("a", Bits.from_string("0")),
                  ("b", Bits.from_string("0"))]
        with pytest.raises(LabelingError):
            reconstruct_from_prefix(labels)


class TestDeweyReconstruction:
    def test_round_trip(self, any_tree):
        scheme = DeweyScheme().label_tree(any_tree)
        rebuilt = reconstruct_from_dewey(tagged_labels(scheme, any_tree))
        assert shapes_equal(rebuilt, any_tree)

    def test_missing_parent_rejected(self):
        with pytest.raises(LabelingError):
            reconstruct_from_dewey([("r", ()), ("x", (1, 1))])

    def test_multiple_roots_rejected(self):
        with pytest.raises(LabelingError):
            reconstruct_from_dewey([("a", (1,)), ("b", (2,))])
