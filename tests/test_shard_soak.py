"""Satellite 5's local half: the shard kill-and-recover soak.

A randomized workload keeps flowing while a seeded chaos hand SIGKILLs
a random worker every ``KILL_EVERY`` operations.  The buffer mutation
policy parks writes for dead shards; supervision restarts them through
recovery; the redo journal replays the backlog.  At the end the fleet
must have converged: every shard UP, no buffered ops, every document
byte-identical to a fault-free twin, every audit clean.

The WAL fsync policy comes from ``REPRO_WAL_FSYNC`` (default
``always``) so CI can run the same soak under ``batch:3`` — the policy
only moves the durability-vs-throughput point, never the bytes.
"""

import os
import random

from repro.query.live import LiveCollection
from repro.resilient.policy import RetryPolicy
from repro.shard import HealthPolicy, ShardState, ShardedCollection
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serialize import serialize
from tests.test_shard_equivalence import SEED_DOCS, generate_workload, route

OPERATIONS = 120
KILL_EVERY = 30
FSYNC = os.environ.get("REPRO_WAL_FSYNC", "always")


def test_shard_soak_converges_through_random_worker_kills(tmp_path):
    twin = LiveCollection([parse_document(xml) for xml in SEED_DOCS])
    ops = generate_workload(seed=41, twin=twin, count=OPERATIONS)
    chaos = random.Random(117)
    policy = HealthPolicy(
        heartbeat_interval=60.0,
        restart_budget=5,
        restart=RetryPolicy(
            max_attempts=4, base_delay=0.02, max_delay=0.05, jitter=0.0, seed=0
        ),
    )
    kills = 0
    with ShardedCollection.create(
        tmp_path / "store",
        [parse_document(xml) for xml in SEED_DOCS],
        shards=2,
        fsync=FSYNC,
        policy=policy,
        mutation_policy="buffer",
    ) as service:
        for step, op in enumerate(ops):
            if step and step % KILL_EVERY == 0:
                service.kill_worker(chaos.choice(service.supervisor.shard_ids))
                kills += 1
            ack = route(service, op)
            # Buffered and pending acks are the degraded-write contract;
            # under the buffer policy nothing is ever refused or lost.
            assert ack["status"] in ("applied", "buffered", "pending"), (op, ack)

        assert kills == 3
        assert service.settle(timeout=30.0)
        states = [
            service.supervisor.state_of(s) for s in service.supervisor.shard_ids
        ]
        assert states == [ShardState.UP, ShardState.UP]
        assert [
            service.serialize_document(doc) for doc in range(service.doc_count)
        ] == [serialize(document) for document in twin.documents]
        assert all(v == [] for v in service.audit().values())
        result = service.query("//*")
        assert result.complete
