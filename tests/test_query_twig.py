"""Unit + cross-scheme tests for twig pattern matching."""

import pytest

from repro.datasets.shakespeare import play
from repro.errors import QuerySyntaxError
from repro.labeling.interval import XissIntervalScheme
from repro.labeling.prefix import Prefix2Scheme
from repro.labeling.prime import PrimeScheme
from repro.query.twig import TwigNode, TwigPattern, match_twig
from repro.xmlkit.builder import element


class TestTwigParsing:
    def test_single_node(self):
        pattern = TwigPattern.parse("book")
        assert pattern.root.tag == "book"
        assert pattern.output is pattern.root

    def test_path_child_edges(self):
        pattern = TwigPattern.parse("a/b/c")
        b = pattern.root.children[0]
        c = b.children[0]
        assert (b.tag, b.edge) == ("b", "child")
        assert (c.tag, c.edge) == ("c", "child")
        assert pattern.output is c

    def test_descendant_edges(self):
        pattern = TwigPattern.parse("a//b")
        assert pattern.root.children[0].edge == "descendant"

    def test_branching(self):
        pattern = TwigPattern.parse("book[/title]//author")
        tags = {child.tag: child.edge for child in pattern.root.children}
        assert tags == {"title": "child", "author": "descendant"}
        assert pattern.output.tag == "author"

    def test_nested_branches(self):
        pattern = TwigPattern.parse("play//act[/title][//speech[/speaker]//line]")
        act = pattern.root.children[0]
        assert [c.tag for c in act.children] == ["title", "speech"]
        speech = act.children[1]
        assert [c.tag for c in speech.children] == ["speaker", "line"]
        # bracketed branches never capture the output
        assert pattern.output.tag == "act"

    def test_str_reparses_to_same_structure(self):
        def same(a: TwigNode, b: TwigNode) -> bool:
            return (
                a.tag == b.tag
                and a.edge == b.edge
                and len(a.children) == len(b.children)
                and all(same(x, y) for x, y in zip(a.children, b.children))
            )

        for text in ("play//act[/title]", "a/b//c", "x[/y][//z]/w"):
            root = TwigPattern.parse(text).root
            assert same(TwigPattern.parse(str(root)).root, root)

    @pytest.mark.parametrize("bad", ["", "/a", "a[", "a[b]", "a]", "a[/b", "a//"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(QuerySyntaxError):
            TwigPattern.parse(bad)


@pytest.fixture
def library():
    return element(
        "library",
        element(
            "book",
            element("title"),
            element("author", element("name")),
            element("author", element("name")),
        ),
        element("book", element("title")),
        element("journal", element("title"), element("author", element("name"))),
    )


SCHEMES = [
    ("interval", XissIntervalScheme),
    ("prime", lambda: PrimeScheme(reserved_primes=0, power2_leaves=False)),
    ("prefix-2", Prefix2Scheme),
]


@pytest.mark.parametrize("scheme_name, factory", SCHEMES, ids=[s for s, _f in SCHEMES])
class TestTwigMatching:
    def matcher(self, factory, tree):
        scheme = factory().label_tree(tree)
        nodes = list(tree.iter_preorder())
        return scheme, nodes

    def test_single_tag(self, scheme_name, factory, library):
        scheme, nodes = self.matcher(factory, library)
        matches = match_twig(scheme, nodes, TwigPattern.parse("book"))
        assert len(matches) == 2

    def test_path_with_branch(self, scheme_name, factory, library):
        scheme, nodes = self.matcher(factory, library)
        # books that have BOTH a title and an author
        pattern = TwigPattern.parse("book[/title]/author")
        matches = match_twig(scheme, nodes, pattern)
        assert len(matches) == 2  # two author elements of the first book

    def test_output_node_selection(self, scheme_name, factory, library):
        scheme, nodes = self.matcher(factory, library)
        pattern = TwigPattern.parse("book[/author]/title")
        matches = match_twig(scheme, nodes, pattern)
        assert len(matches) == 1  # only the first book has authors
        assert matches[0].tag == "title"

    def test_descendant_edge(self, scheme_name, factory, library):
        scheme, nodes = self.matcher(factory, library)
        matches = match_twig(scheme, nodes, TwigPattern.parse("library//name"))
        assert len(matches) == 3

    def test_child_vs_descendant_difference(self, scheme_name, factory, library):
        scheme, nodes = self.matcher(factory, library)
        child = match_twig(scheme, nodes, TwigPattern.parse("library/name"))
        descendant = match_twig(scheme, nodes, TwigPattern.parse("library//name"))
        assert len(child) == 0 and len(descendant) == 3

    def test_wildcard(self, scheme_name, factory, library):
        scheme, nodes = self.matcher(factory, library)
        matches = match_twig(scheme, nodes, TwigPattern.parse("book/*"))
        assert len(matches) == 4  # title, author, author, title

    def test_no_match(self, scheme_name, factory, library):
        scheme, nodes = self.matcher(factory, library)
        assert match_twig(scheme, nodes, TwigPattern.parse("book/editor")) == []

    def test_bindings(self, scheme_name, factory, library):
        scheme, nodes = self.matcher(factory, library)
        pattern = TwigPattern.parse("book[/title]/author")
        embeddings = match_twig(scheme, nodes, pattern, bindings=True)
        assert len(embeddings) == 2
        for embedding in embeddings:
            bound = {twig.tag: node for twig, node in embedding.items()}
            assert bound["book"].is_ancestor_of(bound["author"])
            assert bound["book"].is_ancestor_of(bound["title"])


class TestCrossSchemeAgreement:
    def test_all_schemes_agree_on_play(self):
        tree = play(seed=6)
        nodes = list(tree.iter_preorder())
        patterns = [
            "PLAY//SCENE[/TITLE]//SPEECH/SPEAKER",
            "ACT//SPEECH[/SPEAKER]/LINE",
            "PLAY//ACT[/PERSONAE]//LINE",
        ]
        reference = None
        for _name, factory in SCHEMES:
            scheme = factory().label_tree(tree)
            counts = [
                len(match_twig(scheme, nodes, TwigPattern.parse(p))) for p in patterns
            ]
            if reference is None:
                reference = counts
                assert all(count > 0 for count in counts)
            else:
                assert counts == reference
