"""Unit tests for repro.xmlkit.parser (well-formedness + DOM building)."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xmlkit.parser import iter_events, parse_document


class TestWellFormedness:
    def test_mismatched_tags(self):
        with pytest.raises(XmlSyntaxError):
            list(iter_events("<a><b></a></b>"))

    def test_unclosed_element(self):
        with pytest.raises(XmlSyntaxError):
            list(iter_events("<a><b></b>"))

    def test_stray_closing_tag(self):
        with pytest.raises(XmlSyntaxError):
            list(iter_events("</a>"))

    def test_two_roots(self):
        with pytest.raises(XmlSyntaxError):
            list(iter_events("<a/><b/>"))

    def test_text_outside_root(self):
        with pytest.raises(XmlSyntaxError):
            list(iter_events("<a/>trailing"))

    def test_whitespace_outside_root_ok(self):
        assert list(iter_events("  <a/>  \n"))

    def test_empty_document(self):
        with pytest.raises(XmlSyntaxError):
            list(iter_events("   "))

    def test_comment_only_document(self):
        with pytest.raises(XmlSyntaxError):
            list(iter_events("<!-- nothing here -->"))


class TestParseDocument:
    def test_structure(self):
        root = parse_document("<book><title/><author/><author/></book>")
        assert root.tag == "book"
        assert [child.tag for child in root.children] == ["title", "author", "author"]

    def test_parent_pointers(self):
        root = parse_document("<a><b><c/></b></a>")
        c = root.children[0].children[0]
        assert c.tag == "c"
        assert c.parent.tag == "b"
        assert c.parent.parent is root

    def test_attributes(self):
        root = parse_document('<a id="r"><b n="1"/></a>')
        assert root.attributes == {"id": "r"}
        assert root.children[0].attributes == {"n": "1"}

    def test_text_capture(self):
        root = parse_document("<a>hello</a>")
        assert root.text == "hello"

    def test_whitespace_between_elements_ignored(self):
        root = parse_document("<a>\n  <b/>\n  <c/>\n</a>")
        assert root.text == ""
        assert len(root.children) == 2

    def test_comments_and_pis_discarded(self):
        root = parse_document("<?xml version='1.0'?><a><!-- x --><b/></a>")
        assert [child.tag for child in root.children] == ["b"]

    def test_deep_nesting(self):
        depth = 200
        text = "".join(f"<n{i}>" for i in range(depth)) + "".join(
            f"</n{i}>" for i in reversed(range(depth))
        )
        root = parse_document(text)
        assert root.stats().depth == depth - 1

    def test_mixed_content_text_joined(self):
        root = parse_document("<a>one<b/>two</a>")
        assert "one" in root.text and "two" in root.text
