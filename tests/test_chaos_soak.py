"""The chaos soak: 500 randomized operations under transient-fault fire.

The resilience subsystem's acceptance test (and the PR's): a long
randomized workload runs with seeded probabilistic faults injected at
*every* WAL/snapshot boundary — pre-write, post-write (the ambiguous
write), fsync, and snapshot I/O — with retries absorbing all of them.  At
the end:

* the live state is byte-identical to a fault-free twin of the same
  workload (retries created no duplicates and lost no acknowledged
  writes),
* recovery from the surviving directory is byte-identical too and the
  deep invariant audit is clean,
* and the run provably *was* under fire (injected fault count > 0).

Everything is seeded — chaos RNG, workload RNG, retry jitter — and the
backoff sleeps are stubbed, so the soak is deterministic and fast.
"""

import random

import pytest

from repro.durable import collection_fingerprint, recover
from repro.obs.audit import audit_ordered_document
from repro.resilient import (
    BreakerPolicy,
    ChaosInjector,
    ResilientCollection,
    RetryPolicy,
)
from repro.xmlkit.parser import parse_document

DOC = "<root><a/><b><c/><d/></b></root>"
OPERATIONS = 500
#: Per-site fault probability.  With ~3 injection opportunities per
#: logged mutation and a 12-attempt budget, the odds of any operation
#: exhausting its retries are below 1e-9 — and the seed pins them to
#: "never" for this exact run.
RATE = 0.04


def run_workload(collection, seed, operations=OPERATIONS):
    """Drive a deterministic randomized mutation mix."""
    rng = random.Random(seed)
    root = collection.documents[0]
    for step in range(operations):
        nodes = list(root.iter_preorder())
        target = rng.choice(nodes)
        roll = rng.random()
        if roll < 0.55:
            collection.insert_child(
                target, rng.randint(0, len(target.children)), tag=f"n{step}"
            )
        elif roll < 0.70 and target is not root:
            collection.insert_before(target, tag=f"n{step}")
        elif roll < 0.85 and target is not root:
            collection.insert_after(target, tag=f"n{step}")
        elif roll < 0.95 and target is not root:
            collection.delete(target)
        else:
            collection.checkpoint()


def build(tmp_path, name, chaos):
    return ResilientCollection.create(
        tmp_path / name,
        [parse_document(DOC)],
        faults=chaos,
        retry=RetryPolicy(max_attempts=12, base_delay=0.0, max_delay=0.0,
                          seed=5),
        breaker=BreakerPolicy(failure_threshold=11),
        sleep=lambda _s: None,
    )


@pytest.mark.parametrize("chaos_seed", [3, 11])
def test_soak_is_byte_identical_and_audit_clean(tmp_path, chaos_seed):
    chaos = ChaosInjector(rate=RATE, seed=chaos_seed, sleep=lambda _s: None)
    soaked = build(tmp_path, f"soaked{chaos_seed}", chaos)
    twin = build(tmp_path, f"twin{chaos_seed}", chaos=None)
    run_workload(soaked, seed=1234)
    run_workload(twin, seed=1234)

    # The run was actually under fire, and every fault was absorbed.
    assert chaos.total_injected > 0
    assert soaked.retries >= chaos.total_injected > 0
    assert not soaked.degraded
    assert soaked.breaker.times_opened == 0

    # Zero lost acknowledged writes, zero duplicates: live states agree
    # byte-for-byte.
    live_fp = collection_fingerprint(soaked.live)
    assert live_fp == collection_fingerprint(twin.live)

    # The on-disk state recovers to the same bytes, audit-clean.
    soaked.close()
    recovered = recover(tmp_path / f"soaked{chaos_seed}", verify=True)
    assert recovered.info.audit_checks > 0
    assert collection_fingerprint(recovered.collection) == live_fp

    # Belt and braces: the deep invariant audit on the recovered documents.
    for document in recovered.collection.ordered_documents:
        report = audit_ordered_document(document)
        assert report.ok, report.summary()


def test_soak_with_stalls_meets_no_deadline_by_default(tmp_path):
    # Slow-write pressure: stalls fire but with no deadline configured the
    # operations simply take longer (the stubbed sleep records the naps).
    naps = []
    chaos = ChaosInjector(rate=0.0, slow_rate=0.2, slow_seconds=0.01,
                          seed=17, sleep=naps.append)
    collection = build(tmp_path, "stalled", chaos)
    run_workload(collection, seed=99, operations=60)
    collection.close()
    assert chaos.stalls == len(naps) > 0
    assert collection.retries == 0  # stalls are latency, not failures


def test_soak_survives_checkpoint_faults(tmp_path):
    # Snapshot-site faults hit checkpoint() (and create()'s successor
    # checkpoints); the retry loop owns those too.
    chaos = ChaosInjector(rate=0.25, seed=7,
                          sites=frozenset({"snapshot"}),
                          sleep=lambda _s: None)
    collection = build(tmp_path, "ckpt", chaos)
    for i in range(10):
        collection.insert_child(collection.documents[0], 0, tag=f"t{i}")
        collection.checkpoint()
    collection.close()
    assert chaos.injected["snapshot"] > 0
    recovered = recover(tmp_path / "ckpt", verify=True)
    assert collection_fingerprint(recovered.collection) == (
        collection_fingerprint(collection.live)
    )
