"""Satellite 3: sharding is an implementation detail, bytes prove it.

A 300-operation randomized workload routed through the sharded service
must leave every document byte-identical to an unsharded twin that
applied the same operations — on 1, 2, and 4 shards — with every
shard's invariant audit clean.  Then the kill-mid-batch test: a worker
crashing on the batch's group-commit append must lose the *whole*
batch (per-shard batch atomicity), and the supervisor's restart replay
must converge back to the twin's exact bytes.
"""

import random

import pytest

from repro.durable.recovery import apply_operation
from repro.query.live import LiveCollection
from repro.resilient.policy import RetryPolicy
from repro.shard import HealthPolicy, ShardedCollection
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serialize import serialize

SEED_DOCS = [
    "<r><a><b/></a><c/></r>",
    "<r><x/><y><z/></y></r>",
    "<r><m/><n/></r>",
    "<r><p><q/></p></r>",
    "<r><u/><v><w/></v></r>",
    "<r><g><h/><i/></g></r>",
]
OPS = 300


def preorder_nodes(root):
    out, stack = [], [root]
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(reversed(node.children))
    return out


def generate_workload(seed, twin, count):
    """``count`` random valid ops, applied to ``twin`` as generated.

    Each op's addresses are derived from the twin's state at that
    moment — exactly the state the sharded service will be in when the
    recorded op replays against it.
    """
    rng = random.Random(seed)
    ops = []
    for _ in range(count):
        doc = rng.randrange(len(twin.documents))
        nodes = preorder_nodes(twin.documents[doc])
        kinds = ["insert_child"] * 5
        if len(nodes) > 1:
            kinds += ["insert_before", "insert_after"] * 2
        if len(nodes) > 2:
            kinds += ["delete"] * 2
        if rng.random() < 0.01:
            kinds = ["add_document"]
        kind = rng.choice(kinds)
        tag = f"t{rng.randrange(1000)}"
        if kind == "insert_child":
            parent = rng.randrange(len(nodes))
            index = rng.randint(0, len(nodes[parent].children))
            op = {"op": kind, "doc": doc, "parent": parent,
                  "index": index, "tag": tag}
        elif kind in ("insert_before", "insert_after"):
            op = {"op": kind, "doc": doc,
                  "ref": rng.randrange(1, len(nodes)), "tag": tag}
        elif kind == "delete":
            op = {"op": kind, "doc": doc, "node": rng.randrange(1, len(nodes))}
        else:
            op = {"op": "add_document", "xml": f"<r><{tag}/></r>"}
        apply_operation(twin, op)
        ops.append(op)
    return ops


def route(service, op):
    kind = op["op"]
    if kind == "insert_child":
        return service.insert_child(op["doc"], op["parent"], op["index"], op["tag"])
    if kind == "insert_before":
        return service.insert_before(op["doc"], op["ref"], op["tag"])
    if kind == "insert_after":
        return service.insert_after(op["doc"], op["ref"], op["tag"])
    if kind == "delete":
        return service.delete(op["doc"], op["node"])
    return service.add_document(op["xml"])


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_service_is_byte_identical_to_unsharded_twin(tmp_path, shards):
    twin = LiveCollection([parse_document(xml) for xml in SEED_DOCS])
    ops = generate_workload(seed=2004, twin=twin, count=OPS)
    expected = [serialize(document) for document in twin.documents]
    assert twin.read_view().audit() == []

    with ShardedCollection.create(
        tmp_path / "store",
        [parse_document(xml) for xml in SEED_DOCS],
        shards=shards,
    ) as service:
        for op in ops:
            ack = route(service, op)
            assert ack["status"] == "applied", (op, ack)
        assert service.doc_count == len(expected)
        actual = [
            service.serialize_document(doc) for doc in range(service.doc_count)
        ]
        assert actual == expected
        assert all(v == [] for v in service.audit().values())
        # The scatter-gather read path sees the same element population.
        counted = service.count("//*")
        assert counted["missing_shards"] == set()
        assert counted["count"] == sum(
            len(preorder_nodes(document)) for document in twin.documents
        )


def test_killed_worker_mid_batch_loses_whole_batch_then_replays(tmp_path):
    documents = [parse_document(xml) for xml in SEED_DOCS[:4]]
    twin = LiveCollection([parse_document(xml) for xml in SEED_DOCS[:4]])
    policy = HealthPolicy(
        heartbeat_interval=60.0,
        restart_budget=3,
        restart=RetryPolicy(
            max_attempts=4, base_delay=0.02, max_delay=0.05, jitter=0.0, seed=0
        ),
    )
    with ShardedCollection.create(
        tmp_path / "store",
        documents,
        shards=2,
        policy=policy,
        fault_spec="crash_after_appends:2",
        mutation_policy="buffer",
    ) as service:
        target = 1  # every op targets one document, hence one shard
        shard_id, _ = service.doc_map.to_local(target)

        for tag in ("s1", "s2"):  # two singles: appends 1 and 2 succeed
            ack = service.insert_child(target, parent=0, index=0, tag=tag)
            assert ack["status"] == "applied"
            apply_operation(
                twin, {"op": "insert_child", "doc": target, "parent": 0,
                       "index": 0, "tag": tag}
            )

        # The batch's group commit is append 3: the injector kills the
        # worker before the record reaches the log, so the ack never
        # comes and the whole batch must be absent from recovered state.
        entries = [
            {"kind": "insert_child", "doc": target, "pos": 0, "index": 0,
             "tag": f"b{i}"}
            for i in range(3)
        ]
        acks = service.apply_batch(entries)
        assert acks[shard_id]["status"] == "pending"

        assert service.settle(timeout=15.0)
        # Per-shard batch atomicity, proven by the recovery watermark:
        # the worker came back at seq 2 (both singles, no batch), so the
        # router's reconciliation requeued the batch rather than
        # dropping it as already-applied.
        assert (shard_id, 2) in service.router.restart_log

        with twin.batch_scope():
            for i in range(3):
                apply_operation(
                    twin, {"op": "insert_child", "doc": target, "parent": 0,
                           "index": 0, "tag": f"b{i}"}
                )
        assert service.serialize_document(target) == serialize(
            twin.documents[target]
        )
        assert all(v == [] for v in service.audit().values())
        assert service.supervisor.health(shard_id).restarts == 1
