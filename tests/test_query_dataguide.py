"""Unit tests for the DataGuide path summary and guided engine."""

import pytest

from repro.query.dataguide import DataGuide, GuidedQueryEngine
from repro.query.engine import QueryEngine
from repro.query.store import LabelStore
from repro.xmlkit.parser import parse_document

PLAY = "<play><title/><act><scene><speech><line/></speech></scene></act></play>"
BOOK = "<book><title/><author/><author/></book>"


@pytest.fixture
def documents():
    return [parse_document(PLAY), parse_document(BOOK)]


@pytest.fixture
def guide(documents):
    return DataGuide(documents)


class TestDataGuide:
    def test_path_count(self, guide):
        # play: play, play/title, play/act, .../scene, .../speech, .../line (6)
        # book: book, book/title, book/author (3)
        assert guide.path_count == 9

    def test_paths_listing(self, guide):
        paths = guide.paths()
        assert ("play", "act", "scene") in paths
        assert ("book", "author") in paths
        assert paths == sorted(paths)

    def test_repeated_structure_summarized_once(self):
        guide = DataGuide([parse_document(BOOK)])
        assert guide.path_count == 3  # two authors share one guide node

    def test_has_path(self, guide):
        assert guide.has_path(["play", "act", "scene", "speech", "line"])
        assert guide.has_path(["book", "author"])
        assert not guide.has_path(["play", "author"])
        assert not guide.has_path(["act"])  # paths are root-anchored

    def test_documents_with_path(self, guide):
        assert guide.documents_with_path(["play", "act"]) == {0}
        assert guide.documents_with_path(["book"]) == {1}
        assert guide.documents_with_path(["nothing"]) == set()

    def test_documents_with_tag(self, guide):
        assert guide.documents_with_tag("title") == {0, 1}
        assert guide.documents_with_tag("line") == {0}
        assert guide.documents_with_tag("xyz") == set()

    def test_documents_with_subsequence(self, guide):
        assert guide.documents_with_subsequence(["play", "speech"]) == {0}
        assert guide.documents_with_subsequence(["book", "author"]) == {1}
        assert guide.documents_with_subsequence(["title"]) == {0, 1}
        assert guide.documents_with_subsequence(["speech", "play"]) == set()
        assert guide.documents_with_subsequence([]) == set()

    def test_multiple_documents_same_shape_share_paths(self):
        guide = DataGuide([parse_document(BOOK), parse_document(BOOK)])
        assert guide.path_count == 3
        assert guide.documents_with_path(["book"]) == {0, 1}


class TestGuidedEngine:
    def test_same_results_as_plain_engine(self, documents):
        store = LabelStore.build(documents, scheme="prime")
        plain = QueryEngine(store)
        guided = GuidedQueryEngine(store)
        for query in ("/play//line", "/book//author", "/title", "/act//Following::line"):
            plain_ids = [r.element_id for r in plain.evaluate(query)]
            guided_ids = [r.element_id for r in guided.evaluate(query)]
            assert plain_ids == guided_ids, query

    def test_skips_irrelevant_documents(self, documents):
        store = LabelStore.build(documents, scheme="interval")
        guided = GuidedQueryEngine(store)
        guided.evaluate("/book//author")
        assert guided.documents_skipped == 1  # the play was never scanned

    def test_impossible_query_short_circuits(self, documents):
        store = LabelStore.build(documents, scheme="interval")
        guided = GuidedQueryEngine(store)
        assert guided.evaluate("/play//author") == []
        assert guided.documents_skipped == 2

    def test_wildcard_bypasses_guide(self, documents):
        store = LabelStore.build(documents, scheme="interval")
        guided = GuidedQueryEngine(store)
        rows = guided.evaluate("/play//*")
        assert guided.documents_skipped == 0
        assert len(rows) == 5  # everything under the play root

    def test_explicit_guide_accepted(self, documents, guide):
        store = LabelStore.build(documents, scheme="interval")
        guided = GuidedQueryEngine(store, guide=guide)
        assert guided.evaluate("/book//author")


class TestEngineExtensions:
    """Wildcards and the parent/ancestor axes added alongside the guide."""

    @pytest.fixture
    def engine(self, documents):
        return QueryEngine(LabelStore.build(documents, scheme="prime"))

    def test_wildcard_first_step(self, engine):
        assert engine.count("/*") == 10  # every element in both documents

    def test_wildcard_descendant(self, engine):
        assert engine.count("/play//*") == 5

    def test_parent_axis(self, engine):
        rows = engine.evaluate("/speech/Parent::scene")
        assert [r.tag for r in rows] == ["scene"]

    def test_ancestor_axis(self, engine):
        rows = engine.evaluate("/line/Ancestor::*")
        assert [r.tag for r in rows] == ["play", "act", "scene", "speech"]

    def test_ancestor_axis_with_tag(self, engine):
        assert engine.count("/line/Ancestor::act") == 1

    def test_explicit_child_axis_name(self, engine):
        assert engine.count("/book/Child::author") == 2

    def test_cannot_start_with_parent(self, engine):
        from repro.errors import QueryEvaluationError

        with pytest.raises(QueryEvaluationError):
            engine.evaluate("/Parent::x")
