"""Unit tests for repro.primes.euclid."""

import pytest

from repro.primes.euclid import extended_gcd, gcd, lcm, modular_inverse


class TestGcd:
    @pytest.mark.parametrize(
        "a, b, expected",
        [(12, 18, 6), (7, 13, 1), (0, 5, 5), (5, 0, 5), (0, 0, 0), (-12, 18, 6), (12, -18, 6)],
    )
    def test_known_values(self, a, b, expected):
        assert gcd(a, b) == expected

    def test_commutative(self):
        assert gcd(84, 132) == gcd(132, 84)

    def test_divides_both(self):
        g = gcd(462, 1071)
        assert 462 % g == 0 and 1071 % g == 0


class TestLcm:
    @pytest.mark.parametrize("a, b, expected", [(4, 6, 12), (7, 13, 91), (0, 9, 0), (5, 5, 5)])
    def test_known_values(self, a, b, expected):
        assert lcm(a, b) == expected

    def test_product_identity(self):
        a, b = 84, 132
        assert lcm(a, b) * gcd(a, b) == a * b


class TestExtendedGcd:
    @pytest.mark.parametrize("a, b", [(240, 46), (7, 13), (0, 5), (5, 0), (17, 17), (1, 1)])
    def test_bezout_identity(self, a, b):
        g, x, y = extended_gcd(a, b)
        assert a * x + b * y == g
        assert g == gcd(a, b)

    def test_gcd_is_nonnegative(self):
        g, _, _ = extended_gcd(-8, -12)
        assert g == 4


class TestModularInverse:
    @pytest.mark.parametrize("a, m", [(3, 7), (10, 17), (5, 12), (7, 31), (100, 101)])
    def test_inverse_property(self, a, m):
        inverse = modular_inverse(a, m)
        assert 0 <= inverse < m
        assert a * inverse % m == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ValueError):
            modular_inverse(6, 9)

    def test_zero_modulus_raises(self):
        with pytest.raises(ValueError):
            modular_inverse(3, 0)

    def test_negative_argument_normalized(self):
        assert modular_inverse(-3, 7) == modular_inverse(4, 7)
