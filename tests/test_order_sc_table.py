"""Unit tests for the SC table (Section 4)."""

import pytest

from repro.errors import CapacityError, OrderingError
from repro.order.sc_table import SCTable


class TestRegistration:
    def test_single_record_orders(self):
        table = SCTable(group_size=None)
        for prime, order in [(2, 1), (3, 2), (5, 3), (7, 4), (11, 5), (13, 6)]:
            table.register(prime, order)
        assert len(table) == 1
        assert table.records[0].sc == 29243  # the paper's Figure 9 value

    def test_group_size_splits_records(self):
        table = SCTable(group_size=2)
        for prime, order in [(2, 1), (3, 2), (5, 3), (7, 4), (11, 5)]:
            table.register(prime, order)
        assert len(table) == 3
        assert [len(record) for record in table.records] == [2, 2, 1]

    def test_max_prime_tracked(self):
        table = SCTable(group_size=3)
        for prime, order in [(2, 1), (3, 2), (5, 3), (7, 4)]:
            table.register(prime, order)
        assert [record.max_prime for record in table.records] == [5, 7]

    def test_order_lookup(self):
        table = SCTable(group_size=2)
        table.register(5, 1)
        table.register(7, 2)
        table.register(11, 3)
        assert table.order_of(5) == 1
        assert table.order_of(7) == 2
        assert table.order_of(11) == 3

    def test_duplicate_rejected(self):
        table = SCTable()
        table.register(5, 1)
        with pytest.raises(OrderingError):
            table.register(5, 2)

    def test_self_label_below_two_rejected(self):
        with pytest.raises(OrderingError):
            SCTable().register(1, 0)

    def test_negative_order_rejected(self):
        with pytest.raises(OrderingError):
            SCTable().register(5, -1)

    def test_unknown_lookup_raises(self):
        with pytest.raises(OrderingError):
            SCTable().order_of(5)

    def test_bad_group_size_rejected(self):
        with pytest.raises(ValueError):
            SCTable(group_size=0)

    def test_register_returns_one_record_touched(self):
        assert SCTable().register(5, 1) == 1


class TestShift:
    def make_table(self, group_size=2):
        table = SCTable(group_size=group_size)
        for prime, order in [(2, 1), (3, 2), (5, 3), (7, 4), (11, 5), (13, 6)]:
            table.register(prime, order)
        return table

    def test_shift_bumps_orders_at_or_after_threshold(self):
        table = self.make_table()
        table.shift_orders_from(3)
        assert table.orders() == {2: 1, 3: 2, 5: 4, 7: 5, 11: 6, 13: 7}

    def test_shift_returns_touched_record_count(self):
        table = self.make_table(group_size=2)
        # records: (2,3), (5,7), (11,13); threshold 3 touches the last two +
        # nothing in the first (orders 1,2 < 3)
        touched, overflowed = table.shift_orders_from(3)
        assert touched == 2
        assert overflowed == []

    def test_shift_everything_reports_overflows(self):
        table = self.make_table(group_size=2)
        # order 1 of modulus 2 would become 2 >= 2: an overflow the caller
        # must repair; order 2 of modulus 3 likewise becomes 3 >= 3.
        touched, overflowed = table.shift_orders_from(0)
        assert sorted(overflowed) == [(2, 2), (3, 3)]
        # All three records were rewritten: the last two in place, and the
        # first through the overflow-driven unregisters (its CRT value is
        # recomputed by system.remove, so it costs a record update too).
        assert touched == 3
        assert 2 not in table.orders() and 3 not in table.orders()

    def test_shift_nothing(self):
        table = self.make_table()
        touched, overflowed = table.shift_orders_from(100)
        assert (touched, overflowed) == (0, [])
        assert table.orders()[13] == 6

    def test_paper_update_walkthrough(self):
        """Section 4.2: insert a node (prime 17) at order 3 into Figure 9."""
        table = SCTable(group_size=5)
        for prime, order in [(2, 1), (3, 2), (5, 3), (7, 4), (11, 5), (13, 6)]:
            table.register(prime, order)
        touched, overflowed = table.shift_orders_from(3)
        assert overflowed == []
        touched += table.register(17, 3)
        assert table.orders() == {2: 1, 3: 2, 5: 4, 7: 5, 11: 6, 13: 7, 17: 3}
        assert touched == 3  # both records rewritten + the registration
        assert table.check()

    def test_overflow_only_record_counts_as_touched(self):
        """Regression: a record whose *only* change is an overflow-driven
        unregister is still one SC-record rewrite (its CRT value is
        recomputed by ``system.remove``) and must be charged to the update
        cost — the old accounting silently dropped it, under-reporting
        Figure 18 in exactly the case the paper overlooks."""
        table = SCTable(group_size=1)
        table.register(2, 1)   # record 0: shifting makes order 2 >= modulus 2
        table.register(11, 5)  # record 1: plain in-place rewrite
        touched, overflowed = table.shift_orders_from(1)
        assert overflowed == [(2, 2)]
        assert touched == 2  # record 0 (overflow rewrite) + record 1 (shift)

    def test_overflow_and_shift_in_same_record_counted_once(self):
        """A record that both shifts a sibling residue and overflows another
        still counts as one rewritten record, not two."""
        table = SCTable(group_size=2)
        table.register(3, 2)   # overflows: 2 + 1 >= 3
        table.register(11, 1)  # shifts in place: 1 -> 2
        touched, overflowed = table.shift_orders_from(1)
        assert overflowed == [(3, 3)]
        assert touched == 1

    def test_register_rejects_order_at_or_above_modulus(self):
        table = SCTable()
        with pytest.raises(OrderingError):
            table.register(5, 5)

    def test_set_order_rejects_invalid_residue(self):
        table = SCTable()
        table.register(7, 1)
        with pytest.raises(OrderingError):
            table.set_order(7, 7)


class TestSetOrderAndUnregister:
    def test_set_order(self):
        table = SCTable()
        table.register(5, 1)
        table.set_order(5, 4)
        assert table.order_of(5) == 4

    def test_unregister(self):
        table = SCTable(group_size=None)
        table.register(5, 1)
        table.register(7, 2)
        table.unregister(5)
        assert table.node_count == 1
        assert table.order_of(7) == 2
        with pytest.raises(OrderingError):
            table.order_of(5)

    def test_unregister_updates_max_prime(self):
        table = SCTable(group_size=None)
        table.register(5, 1)
        table.register(7, 2)
        table.unregister(7)
        assert table.records[0].max_prime == 5

    def test_unregister_unknown_raises(self):
        with pytest.raises(OrderingError):
            SCTable().unregister(3)

    def test_check_validates_all_records(self):
        table = SCTable(group_size=2)
        for prime, order in [(3, 1), (5, 2), (7, 3)]:
            table.register(prime, order)
        assert table.check()

    def test_scan_routing_matches_indexed_routing(self):
        table = SCTable(group_size=2)
        primes = [3, 5, 7, 11, 13, 17, 19]
        for order, prime in enumerate(primes, start=1):
            table.register(prime, order)
        for prime in primes:
            assert table.record_for_by_scan(prime) is table.record_for(prime)

    def test_scan_routing_unknown_raises(self):
        table = SCTable()
        table.register(5, 1)
        with pytest.raises(OrderingError):
            table.record_for_by_scan(7)


class TestGroupSizeTradeoff:
    """Ablation invariant: smaller groups -> more records touched per shift
    is *false*; bigger groups concentrate updates in fewer records."""

    def test_fewer_records_with_bigger_groups(self):
        primes = [3, 5, 7, 11, 13, 17, 19, 23, 29, 31]
        small = SCTable(group_size=2)
        big = SCTable(group_size=5)
        for order, prime in enumerate(primes, start=1):
            small.register(prime, order)
            big.register(prime, order)
        assert small.shift_orders_from(1)[0] == 5
        assert big.shift_orders_from(1)[0] == 2


class TestCapacityErrors:
    """Residue-range exhaustion surfaces as a typed, hinted CapacityError."""

    def test_register_overflow_is_a_capacity_error(self):
        table = SCTable(group_size=2)
        table.register(3, 0)
        table.register(5, 1)
        with pytest.raises(CapacityError) as info:
            table.register(7, 9)  # 9 >= 7: not a legal residue
        error = info.value
        assert error.group == 1  # a full first record: a new one would open
        assert error.document is None  # the table cannot know the document
        assert "recovery hint" in str(error)
        assert "compact()" in error.hint

    def test_register_overflow_names_the_receiving_group(self):
        table = SCTable(group_size=5)
        table.register(3, 0)
        with pytest.raises(CapacityError) as info:
            table.register(11, 11)
        assert info.value.group == 0  # last record still has room

    def test_set_order_overflow_is_a_capacity_error(self):
        table = SCTable()
        table.register(5, 0)
        with pytest.raises(CapacityError) as info:
            table.set_order(5, 5)
        assert info.value.group == 0
        assert info.value.hint

    def test_negative_order_is_still_a_plain_ordering_error(self):
        table = SCTable()
        with pytest.raises(OrderingError) as info:
            table.register(5, -1)
        assert not isinstance(info.value, CapacityError)

    def test_capacity_error_is_catchable_as_before(self):
        # CapacityError subclasses both legacy hierarchies, so existing
        # handlers keep working.
        from repro.errors import LabelingError

        assert issubclass(CapacityError, OrderingError)
        assert issubclass(CapacityError, LabelingError)

    def test_capacity_errors_are_counted(self):
        from repro.obs import metrics

        with metrics.collecting() as registry:
            table = SCTable()
            table.register(5, 0)
            with pytest.raises(CapacityError):
                table.set_order(5, 7)
            counters = registry.snapshot()["counters"]
        assert counters["sc.capacity_errors"] == 1
