"""Integration tests: the whole system under realistic, mixed workloads.

These tests simulate what a downstream adopter does — parse, label, query,
edit, re-query, persist — keeping every subsystem's invariants checked at
each step.  They are the closest thing to an end-to-end editing session.
"""

import random

import pytest

from repro import (
    DataGuide,
    GuidedQueryEngine,
    LabelStore,
    OrderedAxes,
    OrderedDocument,
    QueryEngine,
    TwigPattern,
    load_store,
    match_twig,
    parse_document,
    save_store,
    serialize,
)
from repro.datasets.shakespeare import play, shakespeare_corpus


class TestParseLabelQueryRoundTrip:
    def test_full_pipeline_on_generated_corpus(self):
        corpus = shakespeare_corpus(plays=3, seed=77)
        # serialize + reparse: the store must not care where trees came from
        reparsed = [parse_document(serialize(doc)) for doc in corpus]
        for scheme in ("interval", "prime", "prefix-2"):
            original = QueryEngine(LabelStore.build(corpus, scheme=scheme))
            recycled = QueryEngine(LabelStore.build(reparsed, scheme=scheme))
            for query in ("/PLAY//SPEECH", "/PLAY//ACT[2]//LINE", "/SCENE//SPEAKER"):
                assert original.count(query) == recycled.count(query)

    def test_engine_twig_and_guide_agree_on_paths(self):
        corpus = shakespeare_corpus(plays=2, seed=78)
        store = LabelStore.build(corpus, scheme="prime")
        plain = QueryEngine(store)
        guided = GuidedQueryEngine(store, guide=DataGuide(corpus))
        # a pure path query is expressible all three ways
        engine_count = plain.count("/PLAY//SPEECH/SPEAKER")
        guided_count = guided.count("/PLAY//SPEECH/SPEAKER")
        assert engine_count == guided_count
        from repro.labeling.prime import PrimeScheme

        twig_total = 0
        for doc in corpus:
            scheme = PrimeScheme(reserved_primes=0, power2_leaves=False)
            scheme.label_tree(doc)
            twig_total += len(
                match_twig(
                    scheme, list(doc.iter_preorder()), TwigPattern.parse("PLAY//SPEECH/SPEAKER")
                )
            )
        assert twig_total == engine_count


class TestEditingSession:
    """A long mixed session of ordered edits with invariants re-checked."""

    def test_session_invariants(self):
        rng = random.Random(2024)
        document = OrderedDocument(play(seed=30), group_size=5)
        axes = OrderedAxes(document)
        total_cost = 0
        for step in range(60):
            action = rng.random()
            nodes = list(document.root.iter_preorder())
            if action < 0.5:
                # ordered insert at a random position
                parent = rng.choice(nodes)
                index = rng.randint(0, len(parent.children))
                report = document.insert_child(parent, index, tag=f"edit{step}")
                total_cost += report.total_cost
            elif action < 0.7:
                # delete a random non-root subtree
                victims = [n for n in nodes if not n.is_root]
                if victims:
                    document.delete(rng.choice(victims))
            elif action < 0.85:
                # order-sensitive query: following of a random node
                target = rng.choice(nodes)
                following = axes.following(target)
                pivot = document.order_of(target)
                assert all(document.order_of(n) > pivot for n in following)
            else:
                # position query over a tag group
                speeches = axes.descendants_by_tag(document.root, "SPEECH")
                if len(speeches) >= 3:
                    third = axes.position(speeches, 3)
                    assert document.order_of(third) > document.order_of(speeches[0])
            # global invariants after every step
            if step % 10 == 9:
                assert document.check(), f"order corrupted at step {step}"
                assert document.sc_table.check()
        assert total_cost > 0

    def test_structural_tests_survive_session(self):
        rng = random.Random(7)
        document = OrderedDocument(play(seed=31), group_size=5)
        for step in range(25):
            nodes = list(document.root.iter_preorder())
            parent = rng.choice(nodes)
            document.insert_child(
                parent, rng.randint(0, len(parent.children)), tag=f"n{step}"
            )
        _pairs, mismatches = document.scheme.check_against_tree()
        assert mismatches == 0

    def test_compact_after_heavy_churn(self):
        rng = random.Random(9)
        document = OrderedDocument(play(seed=32), group_size=5)
        for step in range(20):
            nodes = [n for n in document.root.iter_preorder() if not n.is_root]
            if step % 2 == 0:
                parent = rng.choice(nodes)
                document.insert_child(parent, 0, tag="tmp")
            else:
                document.delete(rng.choice(nodes))
        document.compact()
        assert document.check()


class TestPersistenceAcrossEdits:
    def test_snapshot_then_edit_then_resnapshot(self, tmp_path):
        corpus = [play(seed=40)]
        store = LabelStore.build(corpus, scheme="interval")
        first = tmp_path / "v1.labels"
        save_store(store, first)
        baseline = QueryEngine(load_store(first)).count("/PLAY//LINE")

        # edit the tree, rebuild, persist again: counts must track the edit
        corpus[0].find_by_tag("SPEECH")[0].append(
            parse_document("<LINE>new words</LINE>")
        )
        store = LabelStore.build(corpus, scheme="interval")
        second = tmp_path / "v2.labels"
        save_store(store, second)
        assert QueryEngine(load_store(second)).count("/PLAY//LINE") == baseline + 1
