"""Unit tests for the dataset substrate (dtd, random_tree, niagara, shakespeare)."""

import pytest

from repro.datasets.dtd import SchemaElement, expand_schema
from repro.datasets.niagara import DATASET_NAMES, build_dataset, dataset_spec, table1_rows
from repro.datasets.random_tree import RandomTreeBuilder, chain_tree, perfect_tree, star_tree
from repro.datasets.shakespeare import hamlet, play, shakespeare_corpus
from repro.errors import DatasetError


class TestSchemaExpansion:
    def simple_schema(self):
        return (
            SchemaElement("root", (("item", 1, 100),)),
            SchemaElement("item", (("name", 1, 1),)),
            SchemaElement("name", text=True),
        )

    def test_exact_budget(self):
        tree = expand_schema(self.simple_schema(), "root", 41, seed=1)
        assert tree.stats().node_count == 41

    def test_deterministic(self):
        a = expand_schema(self.simple_schema(), "root", 41, seed=1)
        b = expand_schema(self.simple_schema(), "root", 41, seed=1)
        assert a.structurally_equal(b)

    def test_seed_changes_document(self):
        a = expand_schema(self.simple_schema(), "root", 80, seed=1)
        b = expand_schema(self.simple_schema(), "root", 80, seed=2)
        # same structure-counts possible, but the payload texts will differ
        assert not a.structurally_equal(b)

    def test_minima_respected(self):
        tree = expand_schema(self.simple_schema(), "root", 100, seed=0)
        for item in tree.find_by_tag("item"):
            assert [c.tag for c in item.children] == ["name"]

    def test_budget_too_small_is_partial_not_crash(self):
        tree = expand_schema(self.simple_schema(), "root", 2, seed=0)
        assert tree.stats().node_count == 2

    def test_bad_multiplicity_rejected(self):
        with pytest.raises(DatasetError):
            SchemaElement("x", (("y", 3, 1),))

    def test_unknown_root_rejected(self):
        with pytest.raises(DatasetError):
            expand_schema(self.simple_schema(), "nope", 10)

    def test_duplicate_tag_rejected(self):
        with pytest.raises(DatasetError):
            expand_schema(
                (SchemaElement("a"), SchemaElement("a")), "a", 5
            )

    def test_zero_budget_rejected(self):
        with pytest.raises(DatasetError):
            expand_schema(self.simple_schema(), "root", 0)


class TestRandomTrees:
    def test_exact_node_count(self):
        tree = RandomTreeBuilder(seed=1).build(500)
        assert tree.stats().node_count == 500

    def test_depth_and_fanout_caps(self):
        tree = RandomTreeBuilder(seed=2, max_depth=4, max_fanout=5).build(300)
        stats = tree.stats()
        assert stats.depth <= 4
        assert stats.max_fanout <= 5

    def test_deterministic(self):
        a = RandomTreeBuilder(seed=9).build(100)
        b = RandomTreeBuilder(seed=9).build(100)
        assert a.structurally_equal(b)

    def test_impossible_budget_rejected(self):
        with pytest.raises(DatasetError):
            RandomTreeBuilder(seed=0, max_depth=1, max_fanout=2).build(10)

    def test_perfect_tree(self):
        tree = perfect_tree(3, 2)
        stats = tree.stats()
        assert stats.node_count == 15
        assert stats.depth == 3
        assert stats.max_fanout == 2

    def test_chain_and_star(self):
        assert chain_tree(5).stats().depth == 4
        star = star_tree(7).stats()
        assert (star.max_fanout, star.depth) == (7, 1)

    def test_degenerate_args(self):
        assert perfect_tree(0, 3).stats().node_count == 1
        assert star_tree(0).stats().node_count == 1
        with pytest.raises(DatasetError):
            chain_tree(0)


class TestNiagara:
    def test_table1_node_counts_exact(self):
        for name, _topic, max_nodes in table1_rows():
            tree = build_dataset(name)
            assert tree.stats().node_count == max_nodes, name

    def test_nine_datasets(self):
        assert DATASET_NAMES == tuple(f"D{i}" for i in range(1, 10))

    def test_deterministic(self):
        assert build_dataset("D3").structurally_equal(build_dataset("D3"))

    def test_d4_has_huge_fanout(self):
        assert build_dataset("D4").stats().max_fanout > 1000

    def test_d7_is_deep_with_low_fanout(self):
        stats = build_dataset("D7").stats()
        assert stats.depth >= 5
        assert stats.max_fanout <= 10

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            build_dataset("D10")

    def test_spec_lookup(self):
        spec = dataset_spec("D1")
        assert spec.topic == "Sigmod record"
        assert spec.max_nodes == 41

    def test_collection_sizes_decay_from_table1_max(self):
        from repro.datasets.niagara import build_collection

        documents = build_collection("D3", files=6, seed=1)
        sizes = [doc.stats().node_count for doc in documents]
        assert sizes[0] == 340  # the Table 1 maximum comes first
        assert all(later <= sizes[0] for later in sizes[1:])
        assert sizes[-1] < sizes[0]

    def test_collection_deterministic(self):
        from repro.datasets.niagara import build_collection

        first = build_collection("D2", files=4, seed=9)
        second = build_collection("D2", files=4, seed=9)
        assert all(a.structurally_equal(b) for a, b in zip(first, second))

    def test_collection_of_plays(self):
        from repro.datasets.niagara import build_collection

        documents = build_collection("D8", files=3, seed=2)
        assert all(doc.tag == "PLAY" for doc in documents)

    def test_collection_rejects_zero_files(self):
        from repro.datasets.niagara import build_collection

        with pytest.raises(DatasetError):
            build_collection("D1", files=0)


class TestShakespeare:
    def test_play_structure(self):
        root = play(seed=0)
        assert root.tag == "PLAY"
        assert root.children[0].tag == "TITLE"
        assert root.children[1].tag == "PERSONAE"
        acts = [c for c in root.children if c.tag == "ACT"]
        assert len(acts) == 5
        for act in acts:
            assert act.children[0].tag == "TITLE"
            assert any(c.tag == "SCENE" for c in act.children)

    def test_speech_structure(self):
        root = play(seed=0)
        speech = root.find_by_tag("SPEECH")[0]
        assert speech.children[0].tag == "SPEAKER"
        assert all(c.tag == "LINE" for c in speech.children[1:])

    def test_exact_node_budget(self):
        root = play(seed=3, node_budget=2000)
        assert root.stats().node_count == 2000

    def test_hamlet_is_6636_nodes_with_5_acts(self):
        root = hamlet()
        assert root.stats().node_count == 6636
        assert len([c for c in root.children if c.tag == "ACT"]) == 5

    def test_budget_below_natural_size_rejected(self):
        with pytest.raises(DatasetError):
            play(seed=0, node_budget=10)

    def test_corpus_replication(self):
        documents = shakespeare_corpus(plays=3, replicate=2, seed=5)
        assert len(documents) == 6
        assert documents[0].structurally_equal(documents[1])
        assert not documents[0].structurally_equal(documents[2])

    def test_corpus_acts_vary(self):
        documents = shakespeare_corpus(plays=10, replicate=1, seed=5)
        act_counts = {
            len([c for c in d.children if c.tag == "ACT"]) for d in documents
        }
        assert len(act_counts) > 1

    def test_bad_args(self):
        with pytest.raises(DatasetError):
            play(acts=0)
        with pytest.raises(DatasetError):
            shakespeare_corpus(plays=0)
