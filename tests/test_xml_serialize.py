"""Unit tests for repro.xmlkit.serialize (+ round-trips with the parser)."""

from repro.datasets.random_tree import RandomTreeBuilder
from repro.datasets.shakespeare import play
from repro.xmlkit.builder import element
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serialize import escape_attribute, escape_text, serialize
from repro.xmlkit.tree import XmlElement


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escapes_quotes_too(self):
        assert escape_attribute('say "hi" & <go>') == "say &quot;hi&quot; &amp; &lt;go&gt;"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(XmlElement("a")) == "<a/>"

    def test_text_element(self):
        assert serialize(XmlElement("a", text="hi")) == "<a>hi</a>"

    def test_attributes(self):
        assert serialize(XmlElement("a", {"x": "1"})) == '<a x="1"/>'

    def test_nested_compact(self):
        tree = element("a", element("b", text="t"), element("c"))
        assert serialize(tree) == "<a><b>t</b><c/></a>"

    def test_indented_output_has_newlines(self):
        tree = element("a", element("b"), element("c"))
        rendered = serialize(tree, indent=2)
        assert rendered.splitlines() == ["<a>", "  <b/>", "  <c/>", "</a>"]


class TestRoundTrip:
    def assert_round_trips(self, tree):
        assert parse_document(serialize(tree)).structurally_equal(tree)

    def test_simple(self):
        self.assert_round_trips(
            element("a", element("b", text="x & y"), element("c", attributes={"k": "<v>"}))
        )

    def test_random_tree(self):
        self.assert_round_trips(RandomTreeBuilder(seed=3).build(150))

    def test_play_document(self):
        self.assert_round_trips(play(seed=1))

    def test_indented_round_trip_structure(self):
        tree = element("a", element("b"), element("c", element("d")))
        assert parse_document(serialize(tree, indent=4)).structurally_equal(tree)
