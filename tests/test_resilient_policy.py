"""Fault classification and retry/breaker policy knobs."""

import pytest

from repro.errors import (
    AuditError,
    CapacityError,
    DurabilityError,
    LabelOverflowError,
    OrderingError,
    QueryEvaluationError,
    SnapshotCorruptError,
    WalCorruptError,
)
from repro.resilient import (
    BreakerPolicy,
    FaultDomain,
    RetryPolicy,
    TransientIOError,
    classify_fault,
)


class TestClassification:
    @pytest.mark.parametrize(
        "error,domain",
        [
            (OSError("disk hiccup"), FaultDomain.TRANSIENT),
            (TransientIOError("injected"), FaultDomain.TRANSIENT),
            (TimeoutError("slow disk"), FaultDomain.TRANSIENT),
            (WalCorruptError("bad crc"), FaultDomain.CORRUPTION),
            (SnapshotCorruptError("bad footer"), FaultDomain.CORRUPTION),
            (CapacityError("order too big"), FaultDomain.CAPACITY),
            (LabelOverflowError("label too wide"), FaultDomain.CAPACITY),
            (DurabilityError("log is closed"), FaultDomain.INVARIANT),
            (OrderingError("bad self-label"), FaultDomain.INVARIANT),
            (AuditError("violated"), FaultDomain.INVARIANT),
            (QueryEvaluationError("no such doc"), FaultDomain.INVARIANT),
            (RuntimeError("who knows"), FaultDomain.INVARIANT),
        ],
    )
    def test_domains(self, error, domain):
        assert classify_fault(error) is domain

    def test_unknown_errors_are_never_retryable(self):
        # The INVARIANT bucket is the safe default: silently retrying an
        # unknown failure is how data corruption becomes data loss.
        assert classify_fault(KeyError("oops")) is FaultDomain.INVARIANT

    def test_domain_str_is_the_metric_suffix(self):
        assert str(FaultDomain.TRANSIENT) == "transient"
        assert str(FaultDomain.CAPACITY) == "capacity"


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, multiplier=2.0,
                             jitter=0.0)
        rng = policy.rng()
        delays = [policy.delay(n, rng) for n in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_only_shrinks(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5, seed=3)
        rng = policy.rng()
        for attempt in range(1, 10):
            raw = min(1.0, 0.1 * 2.0 ** (attempt - 1))
            got = policy.delay(attempt, rng)
            assert raw * 0.5 <= got <= raw

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert [a.delay(n, a.rng()) for n in (1, 2, 3)] == [
            b.delay(n, b.rng()) for n in (1, 2, 3)
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"jitter": 1.5},
            {"multiplier": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_attempt_must_be_positive(self):
        policy = RetryPolicy()
        with pytest.raises(ValueError):
            policy.delay(0, policy.rng())


class TestBreakerPolicy:
    def test_defaults_are_sane(self):
        policy = BreakerPolicy()
        assert policy.failure_threshold >= 1
        assert policy.cooldown_seconds > 0

    @pytest.mark.parametrize(
        "kwargs", [{"failure_threshold": 0}, {"cooldown_seconds": -1.0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BreakerPolicy(**kwargs)
