"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets.shakespeare import play
from repro.xmlkit.serialize import serialize

DOC = "<play><title/><act><scene><speech><line/></speech></scene></act></play>"


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(DOC, encoding="utf-8")
    return str(path)


@pytest.fixture
def play_file(tmp_path):
    path = tmp_path / "play.xml"
    path.write_text(serialize(play(seed=1)), encoding="utf-8")
    return str(path)


class TestStats:
    def test_prints_characteristics(self, xml_file, capsys):
        assert main(["stats", xml_file]) == 0
        out = capsys.readouterr().out
        assert "nodes=6" in out and "depth=4" in out

    def test_multiple_files(self, xml_file, capsys):
        assert main(["stats", xml_file, xml_file]) == 0
        assert capsys.readouterr().out.count("nodes=") == 2

    def test_missing_file(self, capsys):
        assert main(["stats", "/no/such/file.xml"]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<a><b></a>", encoding="utf-8")
        assert main(["stats", str(bad)]) == 3
        assert "malformed XML" in capsys.readouterr().err


class TestLabel:
    def test_prints_labels(self, xml_file, capsys):
        assert main(["label", xml_file, "--scheme", "prime"]) == 0
        out = capsys.readouterr().out
        assert "play" in out and "max label" in out

    @pytest.mark.parametrize(
        "scheme",
        ["prime", "prime-original", "prime-bottomup", "interval",
         "interval-startend", "prefix-1", "prefix-2", "dewey"],
    )
    def test_all_schemes_available(self, xml_file, capsys, scheme):
        assert main(["label", xml_file, "--scheme", scheme]) == 0

    def test_annotate_writes_parseable_file(self, xml_file, tmp_path, capsys):
        out_path = tmp_path / "annotated.xml"
        assert main(["label", xml_file, "--annotate", str(out_path)]) == 0
        from repro.xmlkit.parser import parse_document

        annotated = parse_document(out_path.read_text(encoding="utf-8"))
        assert "label" in annotated.attributes


class TestCheck:
    def test_valid_labeling_exits_zero(self, xml_file, capsys):
        assert main(["check", xml_file, "--scheme", "prefix-2"]) == 0
        assert "0 mismatches" in capsys.readouterr().out


class TestQuery:
    def test_counts_and_paths(self, play_file, capsys):
        assert main(["query", "/PLAY//ACT[2]", play_file]) == 0
        out = capsys.readouterr().out
        assert "node(s) retrieved" in out
        assert "/PLAY/ACT" in out

    def test_scheme_choice(self, play_file, capsys):
        assert main(["query", "/PLAY//SPEECH", play_file, "--scheme", "prefix-2"]) == 0

    def test_bad_query_is_an_error(self, play_file, capsys):
        assert main(["query", "PLAY//", play_file]) == 1


class TestSql:
    def test_renders_sql(self, capsys):
        assert main(["sql", "/play//act", "--scheme", "prime"]) == 0
        assert "SELECT" in capsys.readouterr().out


class TestSpace:
    def test_space_report_lists_schemes(self, play_file, capsys):
        assert main(["space", play_file]) == 0
        out = capsys.readouterr().out
        for name in ("interval", "prefix-2", "dewey", "prime-bottomup"):
            assert name in out


class TestBench:
    def test_small_exhibit(self, capsys):
        assert main(["bench", "fig4"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_chart_mode(self, capsys):
        assert main(["bench", "fig5", "--chart"]) == 0
        assert "#" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        out = tmp_path / "fig4.csv"
        assert main(["bench", "fig4", "--csv", str(out)]) == 0
        header = out.read_text().splitlines()[0]
        assert header.startswith("fan-out")

    def test_unknown_exhibit(self, capsys):
        assert main(["bench", "fig99"]) == 2
        assert "unknown exhibit" in capsys.readouterr().err


class TestDurableVerbs:
    @pytest.fixture
    def state_dir(self, tmp_path, play_file):
        directory = tmp_path / "state"
        assert main(["dump", str(directory), play_file]) == 0
        return str(directory)

    def test_dump_creates_a_recoverable_directory(self, tmp_path, play_file, capsys):
        assert main(["dump", str(tmp_path / "fresh"), play_file]) == 0
        out = capsys.readouterr().out
        assert "created durable collection" in out
        assert "snapshot.writes = 1" in out

    def test_dump_refuses_to_overwrite(self, state_dir, play_file, capsys):
        assert main(["dump", state_dir, play_file]) == 4
        assert "already holds" in capsys.readouterr().err

    def test_load_round_trips_a_query(self, state_dir, play_file, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["query", "/PLAY//ACT", play_file]) == 0
        direct = capsys.readouterr().out
        assert cli_main(["load", state_dir, "--query", "/PLAY//ACT"]) == 0
        recovered = capsys.readouterr().out
        assert "recovered from snapshot generation 1" in recovered
        direct_count = [l for l in direct.splitlines() if "retrieved" in l][0]
        count = direct_count.split()[1]
        assert f"-- {count} node(s) retrieved" in recovered

    def test_recover_reports_and_counts(self, state_dir, capsys):
        assert main(["recover", state_dir]) == 0
        out = capsys.readouterr().out
        assert "recovered from snapshot generation 1" in out
        assert "audit:" in out and "0 violations" in out
        assert "snapshot.loads = 1" in out

    def test_recover_falls_back_past_a_corrupt_snapshot(self, state_dir, capsys):
        from pathlib import Path

        from repro.durable import DurableCollection, flip_bit
        from repro.durable.recovery import snapshot_path

        collection = DurableCollection.open(state_dir)
        collection.insert_child(collection.documents[0], 0)
        collection.checkpoint()  # generation 2
        collection.close()
        capsys.readouterr()
        flip_bit(snapshot_path(Path(state_dir), 2), 9)
        assert main(["recover", state_dir]) == 0
        out = capsys.readouterr().out
        assert "fell back past corrupt generation(s): 2" in out

    def test_recover_on_garbage_directory_fails_cleanly(self, tmp_path, capsys):
        assert main(["recover", str(tmp_path / "nothing")]) == 4
        assert "durability failure" in capsys.readouterr().err

    def test_stats_accepts_a_durable_directory(self, state_dir, capsys):
        assert main(["stats", state_dir]) == 0
        out = capsys.readouterr().out
        assert "durable collection" in out
        assert "snapshot.loads = 1" in out
        assert "recovery.runs = 1" in out

    def test_fsync_env_default(self, tmp_path, play_file, monkeypatch):
        monkeypatch.setenv("REPRO_WAL_FSYNC", "batch:4")
        from repro.cli import build_parser

        args = build_parser().parse_args(["dump", str(tmp_path / "s"), play_file])
        assert args.fsync == "batch:4"

    def test_fsync_garbage_is_an_error(self, tmp_path, play_file, capsys):
        assert main(
            ["dump", str(tmp_path / "s"), play_file, "--fsync", "sometimes"]
        ) == 4


class TestHealthVerb:
    @pytest.fixture
    def state_dir(self, tmp_path, xml_file):
        directory = tmp_path / "state"
        assert main(["dump", str(directory), xml_file, "--churn", "10"]) == 0
        return str(directory)

    def test_healthy_collection_exits_zero(self, state_dir, capsys):
        assert main(["health", state_dir]) == 0
        out = capsys.readouterr().out
        assert "state: ok" in out
        assert "breaker: closed" in out
        assert "order check: ok" in out

    def test_json_report(self, state_dir, capsys):
        import json

        assert main(["health", state_dir, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["state"] == "ok"
        assert report["breaker"]["state"] == "closed"
        assert report["order_check"] == "ok"
        assert report["last_seq"] == 10

    def test_garbage_directory_exits_four(self, tmp_path, capsys):
        assert main(["health", str(tmp_path / "nothing")]) == 4
        assert "durability failure" in capsys.readouterr().err


class TestChaosEnv:
    def test_chaos_dump_retries_and_round_trips(
        self, tmp_path, xml_file, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CHAOS", "rate=0.08,seed=7")
        directory = str(tmp_path / "state")
        assert main(["dump", directory, xml_file, "--churn", "30"]) == 0
        out = capsys.readouterr().out
        assert "chaos:" in out
        assert "resilient.retries" in out  # faults were actually retried
        monkeypatch.delenv("REPRO_CHAOS")
        assert main(["load", directory, "--query", "//*"]) == 0
        assert "0 violations" in capsys.readouterr().out
        assert main(["health", directory]) == 0

    def test_bad_chaos_spec_is_rejected(self, tmp_path, xml_file, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "rate=lots")
        with pytest.raises(ValueError, match="bad chaos spec"):
            main(["dump", str(tmp_path / "state"), xml_file])


class TestReplicationVerbs:
    @pytest.fixture
    def state_dir(self, tmp_path, play_file):
        directory = tmp_path / "state"
        assert main(["dump", str(directory), play_file, "--churn", "5"]) == 0
        return str(directory)

    def test_replicate_converges_and_queries(self, state_dir, capsys):
        assert main(["replicate", state_dir, "--query", "//ACT"]) == 0
        out = capsys.readouterr().out
        assert "replica of" in out and "node(s) retrieved" in out

    def test_replicate_writes_state_for_lag(self, state_dir, tmp_path, capsys):
        state = tmp_path / "rep.json"
        assert main(["replicate", state_dir, "--state", str(state)]) == 0
        capsys.readouterr()
        assert main(["lag", state_dir, "--state", str(state)]) == 0
        out = capsys.readouterr().out
        assert "lag: 0 record(s), 0 byte(s)" in out

    def test_lag_json_fields(self, state_dir, capsys):
        assert main(["lag", state_dir, "--json"]) == 0
        import json

        report = json.loads(capsys.readouterr().out)
        assert {"applied_seq", "primary_seq", "record_lag", "byte_lag"} <= set(report)

    def test_lag_max_bytes_exceeded_is_five(self, state_dir, tmp_path, capsys):
        # Make the replica stale: record its position, then let the
        # primary keep writing.
        state = tmp_path / "rep.json"
        assert main(["replicate", state_dir, "--state", str(state)]) == 0
        from repro.durable import DurableCollection

        col = DurableCollection.open(state_dir)
        col.insert_child(col.documents[0], 0, tag="late")
        col.close()
        capsys.readouterr()
        assert main(["lag", state_dir, "--state", str(state), "--max-bytes", "0"]) == 5
        assert "replication failure" in capsys.readouterr().err

    def test_replicate_bad_connect_is_five(self, state_dir, capsys):
        assert main(["replicate", state_dir, "--connect", "nonsense"]) == 5
        assert "HOST:PORT" in capsys.readouterr().err

    def test_serve_then_replicate_over_tcp(self, state_dir, capsys):
        from repro.durable.recovery import WAL_NAME
        from repro.replica import WalShipServer

        server = WalShipServer(f"{state_dir}/{WAL_NAME}")
        host, port = server.start()
        try:
            assert main(["replicate", state_dir, "--connect", f"{host}:{port}"]) == 0
            assert "replica of" in capsys.readouterr().out
        finally:
            server.stop()

    def test_serve_duration_exits_clean(self, state_dir, capsys):
        assert main(["serve", state_dir, "--duration", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "shipping" in out and "stopped" in out

    def test_serve_missing_directory_is_two(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope"), "--duration", "0.1"]) == 2


class TestShardVerbs:
    def test_serve_creates_churns_kills_and_recovers(self, xml_file, tmp_path, capsys):
        import json

        root = tmp_path / "sharded"
        assert (
            main(
                ["shard-serve", str(root), xml_file, xml_file,
                 "--shards", "2", "--churn", "8", "--kill", "0",
                 "--query", "//*", "--json"]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["settled"] is True
        assert report["audit_violations"] == 0
        assert report["missing_shards"] == []
        states = {entry["shard"]: entry["state"] for entry in report["shards"]}
        assert states == {0: "up", 1: "up"}
        # The killed worker restarted through recovery mid-churn.
        assert any(entry["restarts"] >= 1 for entry in report["shards"])

    def test_serve_then_reopen_and_offline_status(self, xml_file, tmp_path, capsys):
        import json

        root = tmp_path / "sharded"
        assert main(["shard-serve", str(root), xml_file, xml_file]) == 0
        capsys.readouterr()
        assert main(["shard-serve", str(root), "--churn", "4"]) == 0
        out = capsys.readouterr().out
        assert "opened sharded collection" in out and "churn=4" in out
        assert main(["shard-status", str(root), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["shards"] == 2 and report["doc_count"] == 2
        assert len(report["shard_dirs"]) == 2
        # The churn's WAL records are visible offline, no workers needed.
        assert sum(e["wal_seq"] for e in report["shard_dirs"]) >= 4

    def test_serve_create_over_existing_root_is_refused(
        self, xml_file, tmp_path, capsys
    ):
        root = tmp_path / "sharded"
        assert main(["shard-serve", str(root), xml_file]) == 0
        capsys.readouterr()
        assert main(["shard-serve", str(root), xml_file]) == 6
        assert "already holds" in capsys.readouterr().err

    def test_serve_open_without_manifest_is_refused(self, tmp_path, capsys):
        assert main(["shard-serve", str(tmp_path)]) == 6
        assert "not a sharded collection root" in capsys.readouterr().err

    def test_status_on_garbage_directory_is_six(self, tmp_path, capsys):
        assert main(["shard-status", str(tmp_path)]) == 6
        assert "sharding failure" in capsys.readouterr().err


class TestExitCodeContract:
    """Exit codes are API: 1 generic, 2 missing file, 3 bad XML,
    4 durability, 5 replication, 6 sharding."""

    def test_generic_repro_error_is_one(self, play_file):
        assert main(["query", "PLAY//", play_file]) == 1

    def test_missing_file_is_two(self):
        assert main(["stats", "/no/such/file.xml"]) == 2

    def test_malformed_xml_is_three(self, tmp_path):
        bad = tmp_path / "bad.xml"
        bad.write_text("<unclosed", encoding="utf-8")
        assert main(["query", "//*", str(bad)]) == 3

    def test_durability_error_is_four(self, tmp_path):
        wal = tmp_path / "wal.log"
        wal.write_bytes(b"not a wal at all")
        assert main(["load", str(tmp_path)]) == 4

    def test_replication_error_is_five_not_four(self, tmp_path, play_file):
        # ReplicationError subclasses DurabilityError; the CLI must map it
        # to 5, not fall through to the generic durability code.
        directory = tmp_path / "state"
        assert main(["dump", str(directory), play_file]) == 0
        assert main(["replicate", str(directory), "--connect", "bad"]) == 5

    def test_shard_error_is_six_not_one(self, tmp_path):
        # ShardError subclasses ReproError; the CLI must map it to 6,
        # not fall through to the generic code.
        assert main(["shard-status", str(tmp_path)]) == 6


class TestBenchDurability:
    def test_durability_exhibit_runs(self, capsys):
        assert main(["bench", "durability"]) == 0
        out = capsys.readouterr().out
        assert "Durability overhead" in out
        for policy in ("always", "batch:8", "never"):
            assert policy in out
        assert "NO" not in out  # every recovery byte-identical


class TestModuleEntrypoint:
    def test_python_dash_m(self, xml_file):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "stats", xml_file],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "nodes=6" in result.stdout
