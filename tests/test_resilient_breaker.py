"""Circuit breaker state machine, driven by a fake clock."""

from repro.obs import metrics
from repro.resilient import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make(threshold=3, cooldown=10.0):
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerPolicy(failure_threshold=threshold, cooldown_seconds=cooldown),
        clock=clock,
    )
    return breaker, clock


class TestClosed:
    def test_starts_closed_and_admits(self):
        breaker, _clock = make()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failures_below_threshold_stay_closed(self):
        breaker, _clock = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 2

    def test_success_resets_the_streak(self):
        breaker, _clock = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # 2+2 interleaved never reaches 3


class TestOpen:
    def test_threshold_trips(self):
        breaker, _clock = make(threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.times_opened == 1

    def test_cooldown_gates_readmission(self):
        breaker, clock = make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.now = 9.9
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.state == HALF_OPEN  # state property is cooldown-aware
        assert breaker.allow()

    def test_force_open(self):
        breaker, _clock = make()
        breaker.force_open()
        assert breaker.state == OPEN
        assert not breaker.allow()


class TestHalfOpen:
    def test_exactly_one_probe_is_admitted(self):
        breaker, clock = make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # probe in flight: nobody else
        assert breaker.probes == 1

    def test_probe_success_closes(self):
        breaker, clock = make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.times_closed == 1

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # cooldown restarted at t=5
        clock.now = 9.9
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow()
        assert breaker.times_opened == 2


class TestMetrics:
    def test_transitions_are_counted(self):
        with metrics.collecting() as registry:
            breaker, clock = make(threshold=2, cooldown=1.0)
            breaker.record_failure()
            breaker.record_failure()  # opens
            clock.now = 1.0
            assert breaker.allow()  # probe
            breaker.record_success()  # closes
            counters = registry.snapshot()["counters"]
        assert counters["resilient.breaker.opened"] == 1
        assert counters["resilient.breaker.probes"] == 1
        assert counters["resilient.breaker.closed"] == 1
