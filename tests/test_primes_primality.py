"""Unit tests for repro.primes.primality (Miller–Rabin)."""

import pytest

from repro.primes.primality import is_prime, next_prime, previous_prime
from repro.primes.sieve import sieve_of_eratosthenes


class TestIsPrime:
    def test_agrees_with_sieve_up_to_10000(self):
        table = sieve_of_eratosthenes(10_000)
        for n in range(10_001):
            assert is_prime(n) == table[n], f"disagreement at {n}"

    @pytest.mark.parametrize("n", [-7, -1, 0, 1])
    def test_small_nonprimes(self, n):
        assert not is_prime(n)

    @pytest.mark.parametrize(
        "carmichael", [561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265]
    )
    def test_rejects_carmichael_numbers(self, carmichael):
        assert not is_prime(carmichael)

    @pytest.mark.parametrize(
        "prime",
        [
            2_147_483_647,  # Mersenne prime 2^31 - 1
            4_294_967_311,  # smallest prime above 2^32
            (1 << 61) - 1,  # Mersenne prime 2^61 - 1
            67_280_421_310_721,  # a Fermat-number factor
        ],
    )
    def test_large_known_primes(self, prime):
        assert is_prime(prime)

    @pytest.mark.parametrize(
        "composite",
        [
            (1 << 61) + 1,
            2_147_483_647 * 67_280_421_310_721,
            10**18 + 9 + 2,  # even
        ],
    )
    def test_large_composites(self, composite):
        assert not is_prime(composite)

    def test_square_of_prime(self):
        assert not is_prime(104_729**2)


class TestNextPrime:
    @pytest.mark.parametrize(
        "n, expected", [(0, 2), (1, 2), (2, 3), (3, 5), (13, 17), (89, 97), (100, 101)]
    )
    def test_known_values(self, n, expected):
        assert next_prime(n) == expected

    def test_negative_input(self):
        assert next_prime(-100) == 2

    def test_strictly_greater(self):
        for n in range(200):
            assert next_prime(n) > n


class TestPreviousPrime:
    @pytest.mark.parametrize("n, expected", [(3, 2), (10, 7), (100, 97), (98, 97)])
    def test_known_values(self, n, expected):
        assert previous_prime(n) == expected

    def test_rejects_at_or_below_two(self):
        with pytest.raises(ValueError):
            previous_prime(2)

    def test_round_trip_with_next(self):
        for n in [10, 100, 1000, 12345]:
            p = next_prime(n)
            assert previous_prime(p + 1) == p
